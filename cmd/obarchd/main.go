// Command obarchd serves a Caltech Object Machine image over HTTP/JSON:
// one compiled and loaded image is snapshotted and cloned into a sharded
// pool of worker machines, each executing message sends on its own
// goroutine.
//
//	obarchd -addr :8373 -workers 8            # serve the built-in workload suite
//	obarchd -suite=false prog.st other.st     # serve custom source files
//	obarchd -image com.img                    # warm-boot from a persistent image
//
// Durability. Boot descends a recovery ladder: the newest valid
// checkpoint generation under -checkpoint-dir first (generations whose
// manifest or image fails its CRC are rejected, one rung each), then the
// -image file (an unreadable image falls through instead of failing the
// boot), then compile-from-source. /stats and /metrics export the rung
// taken (recovered_generation, recovery_ladder). With -checkpoint DUR, a
// background checkpointer captures the pool's live state every DUR into
// generation-numbered directories (atomic staging-dir + fsync + rename;
// CRC-protected manifest), prunes to the newest -checkpoint-keep, and
// takes a final checkpoint during graceful drain. POST /save persists the
// live state to the -image path the same way (atomically, via a temp
// file and rename) — both capture at a request-boundary quiescence, so
// concurrent traffic delays a save by at most one request, never tears
// it.
//
// Live rotation. POST /rotate stages a new image off the hot path
// (hostile-input validation included) and swaps the pool onto it
// shard-by-shard between requests: queues buffer during each shard's
// stamp, so no request is dropped, failed, or globally paused. If any
// shard's stamp fails the already-swapped shards roll back and the pool
// is left exactly as found. -watch DUR polls the -image path and rotates
// automatically when the file changes. /readyz reports "rotating" (503)
// mid-swap so balancers prefer steadier peers.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: /readyz flips
// not-ready first (so load balancers stop routing here), then the
// listener stops accepting, in-flight HTTP requests get -drain to
// finish, and the pool is closed — which serves every queued request and
// stops each worker at a request boundary, so shutdown never lands
// mid-send or mid-GC-sweep.
//
// Overload and self-healing. The pool degrades instead of collapsing:
// enqueue is bounded (a full shard queue refuses instead of blocking),
// -maxinflight caps admitted-but-unfinished requests pool-wide, and a
// queued request whose deadline expired while it waited is shed at
// dispatch without executing. /send maps those refusals to HTTP 429
// (rejected at admission) and 503 (shed after expiring), both with a
// Retry-After header; machine errors stay 422. A worker panic never
// kills the daemon: recovery barriers convert it into a failed result,
// quarantine the suspect machine, and re-stamp a fresh worker from the
// serving snapshot. -chaos arms a seeded, deterministic fault plan
// (panics, stalls, dispatch clogs) for drills against exactly those
// paths.
//
// The HTTP request path is a pooled fast lane: bodies land in recycled
// buffers, the fixed send/batch wire shape is parsed and rendered by a
// hand-written codec (selectors interned, responses byte-identical to
// encoding/json), and anything the codec does not recognise falls back
// to encoding/json so behaviour never changes (-fastwire=false forces
// the fallback everywhere). Keyless requests are routed per -routing:
// "jsq" (default) joins the shortest queue via power-of-two-choices,
// "rr" is the blind round-robin ablation.
//
// Binary transport. -binary-addr additionally serves the obwire
// protocol (see internal/obwire): length-prefixed binary frames over
// persistent TCP connections, pipelined — many frames in flight per
// connection, responses in request order with echoed frame ids — and
// feeding the same pool, admission control, and flight recorder as
// HTTP. The per-connection read→dispatch→write loop runs at zero
// allocations per send in steady state, which is what drops a loopback
// send from ~30 µs (HTTP) to low single-digit µs. Frame statuses mirror
// the HTTP map (OK / machine error 422 / overloaded 429 / shed 503), so
// client backoff logic carries over; a malformed frame poisons only its
// own connection. Graceful drain closes the binary listener alongside
// the HTTP one, answering every already-dispatched frame first, and the
// transport's decode/encode spans and counters land in the same /stats,
// /metrics, and flight-recorder families as HTTP's.
//
// Observability. Every worker shard feeds an always-on, lock-free flight
// recorder (see internal/flight): a fixed-size ring of request lifecycle
// events — enqueue, dispatch, exec start/end, abort, reject, shed,
// panic, restamp, GC slices — written
// with zero allocations on the serving path. On top of it the daemon
// explains itself four ways: /stats aggregates counters, per-stage span
// percentiles (queue wait, service, decode, encode), node identity
// (start time, uptime, image provenance) and Go runtime gauges; /metrics
// renders the same material as Prometheus text exposition; /debug/slow
// returns the full event chain and per-request machine accounting of
// every request that crossed the -slowlog threshold; and -debug mounts
// net/http/pprof under /debug/pprof for CPU/heap/goroutine profiles.
// -flight=false ablates the recorder (and with it the stage spans and
// slow capture); the modelled machine accounting is bit-identical either
// way.
//
// Endpoints:
//
//	POST /send        {"receiver": 21, "selector": "double", "args": []};
//	                  answers 200, 422 on machine errors, 429 + Retry-After
//	                  when refused at admission, 503 + Retry-After when shed
//	                  after its deadline expired in queue
//	POST /batch       [{"receiver": 21, "selector": "double"}, ...] — executed
//	                  through the pool's sharded DoAll fast path; the response
//	                  is the result array in request order, with per-request
//	                  failures (overload refusals included) reported inline
//	POST /save        persist the pool's live state to the -image path,
//	                  captured at a request-boundary quiescence
//	POST /rotate      swap the pool onto a new image with zero downtime;
//	                  optional body {"path": "..."} (default: the -image
//	                  path); 409 while another rotation is mid-swap, 400
//	                  for an invalid image (pool untouched), 500 for a
//	                  mid-swap failure (pool rolled back)
//	GET  /programs    the loaded workload programs (name, size, entry, check)
//	GET  /stats       aggregated pool metrics (add ?format=text for a table);
//	                  includes the routing policy, per-shard queue depths,
//	                  node identity (start_time, uptime_s, image provenance),
//	                  Go runtime gauges, and fixed-bucket percentiles per
//	                  stage: "latency_us"/"service_us" is machine service
//	                  time (p50/p90/p99/p999), "queue_us" queue wait,
//	                  "decode_us"/"encode_us" the HTTP codec spans, and
//	                  "http_latency_us" the whole handler
//	GET  /metrics     Prometheus text exposition of the same counters,
//	                  gauges, and latency histograms
//	GET  /debug/slow  recent slow-request captures: spans, per-request
//	                  core.Stats delta, and the flight-recorder event chain
//	GET  /debug/pprof CPU/heap/goroutine profiling (only with -debug)
//	GET  /healthz     liveness probe: 200 while the process serves HTTP
//	GET  /readyz      readiness probe: 200 while accepting traffic; 503
//	                  with the reason ("draining", "rotating",
//	                  "overloaded", "quarantine-heavy") when new traffic
//	                  should go elsewhere
//
// Binary endpoint (with -binary-addr HOST:PORT):
//
//	obwire send       one frame per message send over a persistent,
//	                  pipelined TCP connection; status 0 (OK) carries the
//	                  result word, 1 (machine error, as HTTP 422),
//	                  2 (overloaded, as 429 — back off and retry),
//	                  3 (shed, as 503 — retry elsewhere) carry the error
//	                  text; /stats gains a "binary" block and /metrics an
//	                  obarch_binary_* family for its transport counters
//	obwire ping       liveness frame answered in queue order — a pong
//	                  proves the read→dispatch→write loop itself is
//	                  serving, which is what the cluster router's
//	                  half-open probe requires before trusting a node
//
// Cluster serving. cmd/obrouter fronts N obarchd nodes with the same
// client wire shapes: affinity keys consistent-hash onto the node ring
// over multiplexed obwire connections, keyless sends extend the pool's
// power-of-two-choices JSQ to cluster level from polled queue_depths,
// and per-node health state machines driven by the /readyz reasons
// above (a node answering "draining" or "rotating" is unroutable but
// not broken) plus in-band refusal statuses open per-node circuit
// breakers and fail retryable refusals over to the next ring node.
// Router endpoints, for clients that talk to the cluster rather than
// one node:
//
//	POST /send         routed by key or cluster JSQ; retryable refusals
//	                   (429/503/transport) fail over across the ring
//	                   before any refusal escapes to the client; 502 on
//	                   a terminal transport error, 503 + Retry-After
//	                   when no backend is routable
//	POST /batch        the array form, routed per-element concurrently
//	POST /nodes/join   add a node to the ring live (409 if a member)
//	POST /nodes/leave  remove a node; its in-flight sends finish
//	GET  /stats        cluster block: per-node health/breaker/failover
//	                   counters, routable count, quorum
//	GET  /metrics      the obarch_cluster_* Prometheus family
//	GET  /readyz       200 while a majority of backends is routable;
//	                   503 "no-quorum" after losing the majority,
//	                   "draining" during the router's own shutdown
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/image"
	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/word"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	binaryAddr := flag.String("binary-addr", "", "obwire binary transport listen address (empty: disabled)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker machines in the pool")
	queue := flag.Int("queue", 256, "per-worker queue depth")
	maxSteps := flag.Uint64("maxsteps", 0, "default per-request step budget (0: machine default)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request wall-clock timeout")
	suite := flag.Bool("suite", true, "load the built-in workload suite")
	gcEvery := flag.Int("gcevery", 0, "collect per worker every N requests (0: default, <0: never)")
	routing := flag.String("routing", serve.RoutingJSQ, `keyless request routing: "jsq" (join shortest queue) or "rr" (round-robin)`)
	fastwire := flag.Bool("fastwire", true, "use the pooled hand-written wire codec (false: encoding/json everywhere)")
	imagePath := flag.String("image", "", "machine image path: warm-boot from it when present (refuses extra source files; /programs still reflects -suite), persist to it on POST /save")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight HTTP requests")
	slowlog := flag.Duration("slowlog", 100*time.Millisecond, "capture requests slower than this for GET /debug/slow (0: disabled)")
	debug := flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof")
	flight := flag.Bool("flight", true, "record request lifecycle events in the per-shard flight recorder")
	maxInFlight := flag.Int("maxinflight", 0, "pool-wide cap on admitted-but-unfinished requests (0: unlimited, <0: refuse everything)")
	chaos := flag.String("chaos", "", `deterministic fault plan, e.g. "seed=42,panic=100,stall=50:2ms,clog=64:1ms" (empty: none)`)
	checkpoint := flag.Duration("checkpoint", 0, "capture a live checkpoint every DUR (0: disabled; requires -checkpoint-dir)")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint directory: recover the newest valid generation at boot, write new generations per -checkpoint")
	checkpointKeep := flag.Int("checkpoint-keep", 5, "checkpoint generations to retain")
	watch := flag.Duration("watch", 0, "poll the -image path every DUR and rotate onto it when it changes (0: disabled)")
	flag.Parse()

	if *routing != serve.RoutingJSQ && *routing != serve.RoutingRR {
		log.Fatalf("obarchd: -routing %q: want %q or %q", *routing, serve.RoutingJSQ, serve.RoutingRR)
	}
	faults, err := parseChaos(*chaos)
	if err != nil {
		log.Fatalf("obarchd: -chaos: %v", err)
	}
	if *checkpoint > 0 && *checkpointDir == "" {
		log.Fatalf("obarchd: -checkpoint requires -checkpoint-dir")
	}
	if *watch > 0 && *imagePath == "" {
		log.Fatalf("obarchd: -watch requires -image")
	}
	snap, programs, boot, err := bootSnapshot(*imagePath, *checkpointDir, *suite, flag.Args())
	if err != nil {
		log.Fatalf("obarchd: %v", err)
	}

	pool := serve.NewPool(snap, serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxSteps:         *maxSteps,
		Timeout:          *timeout,
		GCEvery:          *gcEvery,
		Routing:          *routing,
		NoFlightRecorder: !*flight,
		SlowThreshold:    *slowlog,
		MaxInFlight:      *maxInFlight,
		Faults:           faults,
	})
	if faults != nil {
		log.Printf("obarchd: chaos armed: %s", *chaos)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("obarchd: %v", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	h := newServer(pool, programs, snap, *imagePath)
	h.fast = *fastwire
	h.boot = boot
	if *debug {
		h.mountDebug()
	}
	if *checkpoint > 0 {
		ckpt, err := newCheckpointer(pool, *checkpointDir, *checkpointKeep, *checkpoint)
		if err != nil {
			log.Fatalf("obarchd: -checkpoint-dir %s: %v", *checkpointDir, err)
		}
		h.ckpt = ckpt
		go ckpt.run()
		log.Printf("obarchd: checkpointing to %s every %v (keep %d)", *checkpointDir, *checkpoint, *checkpointKeep)
	}
	if *watch > 0 {
		h.watchStop = make(chan struct{})
		go h.watchImage(*watch, h.watchStop)
		log.Printf("obarchd: watching %s every %v for live rotation", *imagePath, *watch)
	}
	if *binaryAddr != "" {
		bl, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			log.Fatalf("obarchd: -binary-addr: %v", err)
		}
		h.bin = obwire.Serve(bl, pool, obwire.Options{
			DecodeLat: &h.decLat,
			EncodeLat: &h.encLat,
			Logf:      log.Printf,
		})
		log.Printf("obarchd: serving obwire binary transport on %s", bl.Addr())
	}
	srv := &http.Server{Handler: h}
	log.Printf("obarchd: serving %d programs on %s with %d workers", len(programs), l.Addr(), pool.Workers())
	h.serveAndDrain(srv, l, *drain, sig)
	met := pool.Metrics()
	log.Printf("obarchd: drained; served %d requests (%d errors)", met.Requests, met.Errors)
}

// serveAndDrain runs the HTTP server until a signal arrives, then shuts
// down gracefully: /readyz flips not-ready first (load balancers see a
// leaving node before its listener vanishes), then both listeners stop
// accepting — the obwire binary transport drains alongside HTTP,
// answering every already-dispatched frame — in-flight requests get the
// drain budget to finish, and the pool is closed — Close serves every
// already-queued request and stops each worker at a request boundary,
// so exit never races a live send or an incremental GC sweep. A method
// on server so tests can drive the whole shutdown path.
func (s *server) serveAndDrain(srv *http.Server, l net.Listener, drain time.Duration, sig <-chan os.Signal) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		sg := <-sig
		log.Printf("obarchd: %v: draining", sg)
		s.draining.Store(true)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		binDone := make(chan struct{})
		go func() {
			defer close(binDone)
			if s.bin != nil {
				s.bin.Shutdown(ctx)
			}
		}()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("obarchd: shutdown: %v", err)
		}
		<-binDone
	}()
	if err := srv.Serve(l); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("obarchd: %v", err)
	}
	<-done
	// Durability workers wind down before the pool: the watcher stops
	// rotating, and the checkpointer takes its final capture — the
	// freshest possible recovery point — while SnapshotLive still works.
	if s.watchStop != nil {
		close(s.watchStop)
	}
	if s.ckpt != nil {
		s.ckpt.Stop()
	}
	s.pool.Close()
}

// parseChaos parses the -chaos fault plan: comma-separated key=value
// pairs. "seed=S" seeds the per-shard fault phases (0, the default, is
// fully predictable: every cadence fires on exact multiples), "panic=N"
// panics every Nth send on each shard, "stall=N:DUR" sleeps DUR before
// every Nth send, "clog=N:DUR" sleeps DUR in the dispatch loop every Nth
// job. An empty spec means no plan.
func parseChaos(spec string) (*serve.Faults, error) {
	if spec == "" {
		return nil, nil
	}
	f := &serve.Faults{}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("%q: want key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed %q: want an unsigned integer", val)
			}
			f.Seed = n
		case "panic":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("panic %q: want a non-negative integer", val)
			}
			f.PanicEvery = n
		case "stall":
			n, d, err := parseEveryDur(val)
			if err != nil {
				return nil, fmt.Errorf("stall %v", err)
			}
			f.StallEvery, f.Stall = n, d
		case "clog":
			n, d, err := parseEveryDur(val)
			if err != nil {
				return nil, fmt.Errorf("clog %v", err)
			}
			f.ClogEvery, f.Clog = n, d
		default:
			return nil, fmt.Errorf("unknown key %q (want seed, panic, stall, or clog)", key)
		}
	}
	return f, nil
}

// parseEveryDur parses a cadence-with-duration chaos value, "N:DUR"
// (e.g. "50:2ms").
func parseEveryDur(val string) (int, time.Duration, error) {
	ns, ds, ok := strings.Cut(val, ":")
	if !ok {
		return 0, 0, fmt.Errorf("%q: want N:duration", val)
	}
	n, err := strconv.Atoi(ns)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("%q: cadence: want a non-negative integer", val)
	}
	d, err := time.ParseDuration(ds)
	if err != nil || d < 0 {
		return 0, 0, fmt.Errorf("%q: bad duration %q", val, ds)
	}
	return n, d, nil
}

// bootInfo is the serving snapshot's provenance — how this node came to
// hold its image — reported by /stats and /metrics so a cluster can tell
// its members apart.
type bootInfo struct {
	// ImagePath is the -image path, empty when none was configured.
	ImagePath string `json:"path,omitempty"`
	// Mode is the recovery-ladder rung the boot took: "checkpoint" when
	// the snapshot was recovered from a checkpoint generation, "warm"
	// when it was loaded from the persisted -image file, "compile" when
	// it was compiled from source.
	Mode string `json:"mode"`
	// FormatVersion is the on-disk image codec version this build
	// speaks (the version a warm boot read and POST /save writes).
	FormatVersion int `json:"format_version"`
	// RecoveredGeneration is the checkpoint generation the boot
	// recovered, -1 on the lower rungs.
	RecoveredGeneration int64 `json:"recovered_generation"`
	// RecoveryLadder counts the rungs rejected on the way to Mode:
	// corrupt or torn checkpoint generations skipped, plus an unreadable
	// -image file fallen through. 0 is a first-rung boot.
	RecoveryLadder int `json:"recovery_ladder"`
}

// bootSnapshot produces the serving snapshot by descending the recovery
// ladder: the newest valid checkpoint generation under ckptDir first
// (corrupt or torn generations are rejected and cost one rung each),
// then the -image file (warm start — no compile, warm ITLB; an
// unreadable image now falls through instead of failing the boot), then
// compile-from-source. The returned bootInfo records the rung taken and
// the rungs rejected.
func bootSnapshot(imagePath, ckptDir string, suite bool, srcPaths []string) (*obarch.Snapshot, []workload.Program, bootInfo, error) {
	info := bootInfo{ImagePath: imagePath, Mode: "compile", FormatVersion: image.FormatVersion, RecoveredGeneration: -1}
	var programs []workload.Program
	if suite {
		programs = workload.Suite()
	}
	if ckptDir != "" {
		snap, m, rejected, err := image.RecoverLatest(ckptDir)
		info.RecoveryLadder += len(rejected)
		for _, gen := range rejected {
			log.Printf("obarchd: recovery: checkpoint gen %d rejected (corrupt or torn); falling to next rung", gen)
		}
		switch {
		case err == nil:
			if len(srcPaths) != 0 {
				return nil, nil, info, fmt.Errorf("cannot load source files over checkpoint state in %s; clear it or drop the file arguments", ckptDir)
			}
			info.Mode = "checkpoint"
			info.RecoveredGeneration = int64(m.Generation)
			log.Printf("obarchd: recovered checkpoint gen %d from %s (captured %s)", m.Generation, ckptDir, time.Unix(0, m.CreatedUnixNS).UTC().Format(time.RFC3339))
			return snap, programs, info, nil
		case errors.Is(err, image.ErrNoCheckpoint):
			log.Printf("obarchd: recovery: no valid checkpoint in %s; falling to -image", ckptDir)
		default:
			return nil, nil, info, fmt.Errorf("checkpoint dir %s: %w", ckptDir, err)
		}
	}
	if imagePath != "" {
		f, err := os.Open(imagePath)
		switch {
		case err == nil:
			defer f.Close()
			// A warm boot serves exactly what the image holds; silently
			// dropping extra sources (or advertising programs the image
			// was saved without) would misrepresent the pool, so refuse
			// the combination instead.
			if len(srcPaths) != 0 {
				return nil, nil, info, fmt.Errorf("cannot load source files over an existing image %s; delete it or drop the file arguments", imagePath)
			}
			start := time.Now()
			snap, err := obarch.ReadImage(f)
			if err != nil {
				// The image rung failed: one more rung down, compile.
				info.RecoveryLadder++
				log.Printf("obarchd: recovery: image %s rejected (%v); falling to compile", imagePath, err)
				break
			}
			log.Printf("obarchd: warm boot from %s in %v", imagePath, time.Since(start).Round(time.Microsecond))
			info.Mode = "warm"
			return snap, programs, info, nil
		case os.IsNotExist(err):
			log.Printf("obarchd: image %s absent; cold boot (POST /save to create it)", imagePath)
		default:
			return nil, nil, info, err
		}
	}
	sys := obarch.NewSystem(obarch.Options{})
	if suite {
		if _, err := workload.LoadSuite(sys.M); err != nil {
			return nil, nil, info, err
		}
	}
	for _, path := range srcPaths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, info, err
		}
		if err := sys.Load(string(src)); err != nil {
			return nil, nil, info, fmt.Errorf("load %s: %w", path, err)
		}
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return nil, nil, info, err
	}
	return snap, programs, info, nil
}

// sendRequest is the wire form of one message send.
type sendRequest struct {
	Receiver  json.Number   `json:"receiver"`
	Selector  string        `json:"selector"`
	Args      []json.Number `json:"args,omitempty"`
	Key       uint64        `json:"key,omitempty"`
	MaxSteps  uint64        `json:"max_steps,omitempty"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
}

// sendResponse is the wire form of a result. Result is always present on
// success — a method answering nil yields "result": null with no error —
// so clients distinguish success from failure by the error field alone.
type sendResponse struct {
	Result    any    `json:"result"`
	Error     string `json:"error,omitempty"`
	Worker    int    `json:"worker"`
	Steps     uint64 `json:"steps"`
	Cycles    uint64 `json:"cycles"`
	LatencyUS int64  `json:"latency_us"`
}

// programInfo describes one loaded workload program.
type programInfo struct {
	Name  string `json:"name"`
	Entry string `json:"entry"`
	Size  int32  `json:"size"`
	Warm  int32  `json:"warm"`
	Check int32  `json:"check"`
}

// server is the HTTP face of a pool. Split from main so tests can drive it
// through net/http/httptest. snap is the immutable serving snapshot;
// imagePath, when set, is where POST /save persists it. fast selects the
// pooled hand-written wire codec; httpLat records whole-handler latency
// (decode, queueing, service, encode) for the /stats percentiles.
// draining flips when shutdown begins, before the listener closes, so
// /readyz steers load balancers away from a leaving node.
type server struct {
	pool      *serve.Pool
	programs  []workload.Program
	snap      *obarch.Snapshot
	imagePath string
	mux       *http.ServeMux
	fast      bool
	boot      bootInfo
	start     time.Time
	draining  atomic.Bool
	httpLat   stats.ConcurrentHistogram
	decLat    stats.ConcurrentHistogram // request read+parse span
	encLat    stats.ConcurrentHistogram // response encode+write span

	// Durability wiring: ckpt is the background checkpointer (nil when
	// -checkpoint is off), watchStop stops the -watch rotation poller
	// (nil when -watch is off). Both are closed down by serveAndDrain
	// before the pool.
	ckpt      *checkpointer
	watchStop chan struct{}

	// bin is the obwire binary-transport server (nil when -binary-addr
	// is off). It shares the pool, the decode/encode span histograms,
	// and the drain path with the HTTP listener.
	bin *obwire.Server
}

func newServer(pool *serve.Pool, programs []workload.Program, snap *obarch.Snapshot, imagePath string) *server {
	s := &server{pool: pool, programs: programs, snap: snap, imagePath: imagePath, mux: http.NewServeMux(), fast: true, start: time.Now()}
	s.boot = bootInfo{ImagePath: imagePath, Mode: "compile", FormatVersion: image.FormatVersion}
	s.mux.HandleFunc("POST /send", s.handleSend)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /save", s.handleSave)
	s.mux.HandleFunc("POST /rotate", s.handleRotate)
	s.mux.HandleFunc("GET /programs", s.handlePrograms)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/slow", s.handleSlow)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// notReady answers why this node should not receive new traffic, or ""
// while it should. Checked in severity order: a draining node is leaving
// no matter what the pool says; a rotating node serves correctly but a
// balancer should prefer a steadier peer until the swap lands; an
// overloaded pool refuses admission anyway; and when quarantine
// re-stamps are churning through more than half the shards, capacity is
// not what the balancer thinks it is.
func (s *server) notReady() string {
	switch {
	case s.draining.Load():
		return "draining"
	case s.pool.Rotating():
		return "rotating"
	case s.pool.Overloaded():
		return "overloaded"
	case 2*s.pool.UnhealthyShards() > s.pool.Workers():
		return "quarantine-heavy"
	}
	return ""
}

// handleReady is GET /readyz: 200 "ready" while the node should receive
// traffic, 503 with the reason when it should not. Distinct from
// /healthz (liveness): a draining or overloaded node is alive — the
// process must not be restarted — it just wants no new work.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if reason := s.notReady(); reason != "" {
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleSave persists the pool's live state to the configured image
// path. The snapshot is captured through SnapshotLive — the pool
// quiesces to a request boundary, so the image reflects every mutation
// traffic has made, and a save under concurrent load can never catch a
// machine mid-send (the race the old boot-snapshot save only avoided by
// never saving live state at all). The write goes through a temp file
// and an atomic rename, so a crash mid-save can never leave a truncated
// image where the next boot would read it (and the codec's section CRCs
// would refuse such a file anyway).
func (s *server) handleSave(w http.ResponseWriter, _ *http.Request) {
	if s.imagePath == "" {
		http.Error(w, `{"error":"no image path configured; start obarchd with -image"}`, http.StatusBadRequest)
		return
	}
	start := time.Now()
	snap, err := s.pool.SnapshotLive()
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusServiceUnavailable)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.imagePath), ".obarch-image-*")
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	defer os.Remove(tmp.Name())
	if err := obarch.WriteImage(tmp, snap); err != nil {
		tmp.Close()
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	// Flush to stable storage before the rename makes the file current:
	// otherwise a crash can persist the rename but not the data, wiping
	// the previous good image exactly when durability mattered.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	size, _ := tmp.Seek(0, 2)
	if err := tmp.Close(); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	// CreateTemp's 0600 is right for the staging file, not the artifact.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	if err := os.Rename(tmp.Name(), s.imagePath); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":       s.imagePath,
		"bytes":      size,
		"elapsed_us": time.Since(start).Microseconds(),
	})
}

// wordOf converts a JSON number to a machine value: integer literals
// become SmallInts (rejected when they exceed the 32-bit word, however
// large), literals written as floats ("1.5", "1e3") become Floats.
func wordOf(n json.Number) (word.Word, error) {
	if strings.ContainsAny(n.String(), ".eE") {
		f, err := n.Float64()
		if err != nil {
			return word.Word{}, fmt.Errorf("bad number %q", n.String())
		}
		return word.FromFloat(float32(f)), nil
	}
	i, err := n.Int64()
	if err != nil {
		return word.Word{}, fmt.Errorf("integer %q outside the 32-bit machine word", n.String())
	}
	if int64(int32(i)) != i {
		return word.Word{}, fmt.Errorf("integer %d outside the 32-bit machine word", i)
	}
	return word.FromInt(int32(i)), nil
}

// jsonOf converts a machine value to its JSON form.
func jsonOf(v word.Word) any {
	if i, ok := v.IntOK(); ok {
		return i
	}
	if f, ok := v.FloatOK(); ok {
		return f
	}
	switch v {
	case word.True:
		return true
	case word.False:
		return false
	case word.Nil:
		return nil
	}
	return v.String()
}

func (s *server) handleSend(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	c := getCodec()
	defer putCodec(c)
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	body, err := c.readBody(r)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
		return
	}
	poolReq, fastOK := serve.Request{}, false
	if s.fast {
		poolReq, fastOK = parseSend(body, c)
	}
	if !fastOK {
		// Fallback: the original encoding/json path, for wire shapes the
		// fast codec does not recognise — and for its error messages.
		var req sendRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.UseNumber()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
			return
		}
		if poolReq, err = toRequest(req); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
			return
		}
	}
	s.decLat.Observe(time.Since(start))
	res := s.pool.Do(poolReq)
	enc := time.Now()
	status := statusFor(res.Err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// Both refusals are transient by construction — the queue was
		// full, or this request sat past its own deadline — so tell the
		// client when to come back instead of letting it hammer.
		w.Header().Set("Retry-After", "1")
	}
	if s.fast {
		if out, ok := appendSendResponse(c.out[:0], res); ok {
			c.out = append(out, '\n')
			s.writeRaw(w, status, c.out, start, enc)
			return
		}
	}
	s.httpLat.Observe(time.Since(start))
	writeJSON(w, status, toResponse(res))
	s.encLat.Observe(time.Since(enc))
}

// writeRaw sends a fast-encoded response body and records the handler
// and encode-span latencies: enc is when the result came back from the
// pool, so the encode span covers rendering plus the write itself.
func (s *server) writeRaw(w http.ResponseWriter, status int, body []byte, start, enc time.Time) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	s.httpLat.Observe(time.Since(start))
	if _, err := w.Write(body); err != nil {
		log.Printf("obarchd: write response: %v", err)
	}
	s.encLat.Observe(time.Since(enc))
}

// statusFor maps a pool result to its HTTP status: overload refusals
// are 429 (this node is saturated; back off and retry), deadline sheds
// are 503 (the request died waiting in queue; retry, ideally elsewhere),
// and every other machine error stays 422 — the request executed and
// the machine said no, so retrying the same send buys nothing.
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrExpired):
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// toRequest converts one wire send into a pool request.
func toRequest(req sendRequest) (serve.Request, error) {
	if req.Selector == "" {
		return serve.Request{}, fmt.Errorf("missing selector")
	}
	recv, err := wordOf(req.Receiver)
	if err != nil {
		return serve.Request{}, fmt.Errorf("receiver: %v", err)
	}
	args := make([]word.Word, len(req.Args))
	for i, a := range req.Args {
		if args[i], err = wordOf(a); err != nil {
			return serve.Request{}, fmt.Errorf("arg %d: %v", i, err)
		}
	}
	return serve.Request{
		Receiver: recv,
		Selector: req.Selector,
		Args:     args,
		Key:      req.Key,
		MaxSteps: req.MaxSteps,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
	}, nil
}

// toResponse converts one pool result into its wire form.
func toResponse(res serve.Result) sendResponse {
	resp := sendResponse{
		Worker:    res.Worker,
		Steps:     res.Steps,
		Cycles:    res.Cycles,
		LatencyUS: res.Latency.Microseconds(),
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	} else {
		resp.Result = jsonOf(res.Value)
	}
	return resp
}

// handleBatch executes an array of sends through the pool's sharded DoAll
// path: one HTTP round-trip, one queue hand-off per shard sub-batch. The
// response preserves request order; per-request failures are reported
// inline, so the status is 200 whenever the batch itself was well-formed.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	c := getCodec()
	defer putCodec(c)
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	body, err := c.readBody(r)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
		return
	}
	var reqs []serve.Request
	fastOK := false
	if s.fast {
		reqs, fastOK = parseBatch(body, c)
	}
	if !fastOK {
		var wire []sendRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.UseNumber()
		if err := dec.Decode(&wire); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
			return
		}
		reqs = make([]serve.Request, len(wire))
		for i, wr := range wire {
			req, err := toRequest(wr)
			if err != nil {
				http.Error(w, fmt.Sprintf(`{"error":%q}`, fmt.Sprintf("request %d: %v", i, err)), http.StatusBadRequest)
				return
			}
			reqs[i] = req
		}
	}
	s.decLat.Observe(time.Since(start))
	results := s.pool.DoAll(reqs)
	enc := time.Now()
	if fastOK {
		out := append(c.out[:0], '[')
		encOK := true
		for i, res := range results {
			if i > 0 {
				out = append(out, ',')
			}
			if out, encOK = appendSendResponse(out, res); !encOK {
				break
			}
		}
		if encOK {
			c.out = append(out, ']', '\n')
			s.writeRaw(w, http.StatusOK, c.out, start, enc)
			return
		}
	}
	out := make([]sendResponse, len(results))
	for i, res := range results {
		out[i] = toResponse(res)
	}
	s.httpLat.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, out)
	s.encLat.Observe(time.Since(enc))
}

func (s *server) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	out := make([]programInfo, len(s.programs))
	for i, p := range s.programs {
		out[i] = programInfo{Name: p.Name, Entry: p.Entry, Size: p.Size, Warm: p.Warm, Check: p.Check}
	}
	writeJSON(w, http.StatusOK, out)
}

// percentiles renders a histogram's headline quantiles in microseconds.
func percentiles(h stats.Histogram) map[string]any {
	return map[string]any{
		"count": h.Count(),
		"p50":   h.Quantile(0.50).Microseconds(),
		"p90":   h.Quantile(0.90).Microseconds(),
		"p99":   h.Quantile(0.99).Microseconds(),
		"p999":  h.Quantile(0.999).Microseconds(),
	}
}

// runtimeGauges samples the Go runtime — the host process's own health,
// as opposed to the modelled machines' — for /stats and /metrics.
func runtimeGauges() map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"goroutines":        runtime.NumGoroutine(),
		"heap_alloc_bytes":  ms.HeapAlloc,
		"heap_sys_bytes":    ms.HeapSys,
		"heap_objects":      ms.HeapObjects,
		"gc_cycles":         ms.NumGC,
		"gc_pause_total_us": ms.PauseTotalNs / 1e3,
		"next_gc_bytes":     ms.NextGC,
		"total_alloc_bytes": ms.TotalAlloc,
		"stack_inuse_bytes": ms.StackInuse,
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	met := s.pool.Metrics()
	service := s.pool.LatencyHistogram()
	qwait := s.pool.QueueWaitHistogram()
	hlat := s.httpLat.Snapshot()
	dec := s.decLat.Snapshot()
	enc := s.encLat.Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, met.Report().String())
		fmt.Fprintf(w, "service latency   %s\n", service.String())
		fmt.Fprintf(w, "queue wait        %s\n", qwait.String())
		fmt.Fprintf(w, "http latency      %s\n", hlat.String())
		fmt.Fprintf(w, "decode            %s\n", dec.String())
		fmt.Fprintf(w, "encode            %s\n", enc.String())
		fmt.Fprintf(w, "routing           %s\n", s.pool.Routing())
		fmt.Fprintf(w, "in flight         %d\n", s.pool.InFlight())
		ready := "true"
		if reason := s.notReady(); reason != "" {
			ready = "false (" + reason + ")"
		}
		fmt.Fprintf(w, "ready             %s\n", ready)
		fmt.Fprintf(w, "uptime            %v\n", time.Since(s.start).Round(time.Second))
		fmt.Fprintf(w, "image             mode=%s version=%d path=%s\n", s.boot.Mode, s.boot.FormatVersion, s.boot.ImagePath)
		fmt.Fprintf(w, "recovery          rung=%s generation=%d ladder=%d\n", s.boot.Mode, s.boot.RecoveredGeneration, s.boot.RecoveryLadder)
		taken, ckptFails := s.checkpointCounts()
		fmt.Fprintf(w, "checkpoints       taken=%d failures=%d generation=%d age_s=%.1f\n", taken, ckptFails, s.checkpointGen(), s.checkpointAge())
		if s.bin != nil {
			bst := s.bin.Stats()
			fmt.Fprintf(w, "binary            addr=%s conns=%d (active %d) frames_in=%d frames_out=%d proto_errors=%d\n",
				s.bin.Addr(), bst.ConnsAccepted, bst.ConnsActive, bst.FramesIn, bst.FramesOut, bst.ProtoErrors)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"requests":         met.Requests,
		"errors":           met.Errors,
		"timeouts":         met.Timeouts,
		"rejected":         met.Rejected,
		"shed_expired":     met.SheddedExpired,
		"panics":           met.Panics,
		"restamps":         met.Restamps,
		"rotations":        met.Rotations,
		"rotate_failures":  met.RotateFailures,
		"mean_latency_us":  met.MeanLatency().Microseconds(),
		"max_latency_us":   met.MaxLatency.Microseconds(),
		"instructions":     met.Instructions,
		"cycles":           met.Cycles,
		"itlb_hit_ratio":   met.ITLB.Value(),
		"gcs":              met.GCs,
		"gc_pause_us":      met.GCPause.Microseconds(),
		"workers":          s.pool.Workers(),
		"routing":          s.pool.Routing(),
		"queue_depths":     s.pool.QueueDepths(),
		"in_flight":        s.pool.InFlight(),
		"unhealthy_shards": s.pool.UnhealthyShards(),
		"ready":            s.notReady() == "",
		"rotating":         s.pool.Rotating(),
		"latency_us":       percentiles(service),
		"service_us":       percentiles(service),
		"queue_us":         percentiles(qwait),
		"decode_us":        percentiles(dec),
		"encode_us":        percentiles(enc),
		"http_latency_us":  percentiles(hlat),
		"shards":           s.pool.ShardMetrics(),
		"start_time":       s.start.UTC().Format(time.RFC3339Nano),
		"uptime_s":         time.Since(s.start).Seconds(),
		"image":            s.boot,
		"runtime":          runtimeGauges(),
		"flight_recorder":  s.pool.FlightRecorder() != nil,
		"slowlog_us":       s.pool.SlowThreshold().Microseconds(),
		"checkpoint":       s.checkpointStats(),
		"checkpoint_age_s": s.checkpointAge(),
		"binary":           s.binaryStats(),
	})
}

// binaryStats is the /stats binary-transport block: enabled or not,
// plus the obwire server's connection and frame counters. The decode
// and encode spans already land in the shared decode_us/encode_us
// families — one histogram per stage, whichever wire carried it.
func (s *server) binaryStats() map[string]any {
	if s.bin == nil {
		return map[string]any{"enabled": false}
	}
	st := s.bin.Stats()
	return map[string]any{
		"enabled":        true,
		"addr":           s.bin.Addr().String(),
		"conns_accepted": st.ConnsAccepted,
		"conns_active":   st.ConnsActive,
		"frames_in":      st.FramesIn,
		"frames_out":     st.FramesOut,
		"proto_errors":   st.ProtoErrors,
	}
}

// checkpointStats is the /stats checkpoint block: counters from the
// background checkpointer plus the age of the newest checkpoint in
// seconds (-1 when there is none — the "never checkpointed" sentinel a
// dashboard can alert on).
func (s *server) checkpointStats() map[string]any {
	taken, failures := s.checkpointCounts()
	return map[string]any{
		"enabled":    s.ckpt != nil,
		"taken":      taken,
		"failures":   failures,
		"generation": s.checkpointGen(),
		"age_s":      s.checkpointAge(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("obarchd: encode response: %v", err)
	}
}

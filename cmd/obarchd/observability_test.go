package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// driveTraffic replays the suite once against the test server so every
// observability surface has live data behind it.
func driveTraffic(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, p := range workload.Suite() {
		body := fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry)
		if status, out := postSend(t, ts, body); status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", p.Name, status, out.Error)
		}
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint scrapes /metrics under live traffic and checks the
// exposition carries real counts in every family the daemon promises.
func TestMetricsEndpoint(t *testing.T) {
	h, pool := newSuiteServer(t, 2, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	driveTraffic(t, ts)

	status, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	n := len(workload.Suite())
	wantLines := []string{
		fmt.Sprintf("obarch_requests_total %d", n),
		"obarch_errors_total 0",
		"obarch_workers 2",
		"obarch_flight_recorder 1",
		`obarch_image_info{path="",mode="compile",version="1"} 1`,
		`obarch_queue_depth{worker="0"} 0`,
		`obarch_queue_depth{worker="1"} 0`,
		fmt.Sprintf(`obarch_service_latency_seconds_bucket{le="+Inf"} %d`, n),
		fmt.Sprintf("obarch_service_latency_seconds_count %d", n),
		fmt.Sprintf(`obarch_http_latency_seconds_bucket{le="+Inf"} %d`, n),
	}
	for _, want := range wantLines {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Counters that must be live, not just present.
	for _, prefix := range []string{"obarch_instructions_total ", "obarch_cycles_total ", "obarch_itlb_lookups_total ", "go_goroutines ", "go_memstats_heap_alloc_bytes ", "obarch_uptime_seconds "} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			var v float64
			if n, _ := fmt.Sscanf(line, prefix+"%g", &v); strings.HasPrefix(line, prefix) && n == 1 && v > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/metrics: %q absent or zero", strings.TrimSpace(prefix))
		}
	}
	// Every HELP has a TYPE, the exposition-format invariant scrapers
	// actually depend on.
	if h, ty := strings.Count(body, "# HELP"), strings.Count(body, "# TYPE"); h != ty || h == 0 {
		t.Errorf("/metrics: %d HELP lines vs %d TYPE lines", h, ty)
	}
	if ct := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.Header.Get("Content-Type")
	}(); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q lacks exposition version", ct)
	}
}

// TestStatsIdentityAndSpans checks the /stats additions: node identity,
// image provenance, runtime gauges, and the per-stage span percentiles.
func TestStatsIdentityAndSpans(t *testing.T) {
	h, pool := newSuiteServer(t, 2, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	driveTraffic(t, ts)

	status, body := get(t, ts, "/stats")
	if status != http.StatusOK {
		t.Fatalf("/stats status %d", status)
	}
	var st struct {
		StartTime string  `json:"start_time"`
		UptimeS   float64 `json:"uptime_s"`
		Image     struct {
			Mode          string `json:"mode"`
			FormatVersion int    `json:"format_version"`
		} `json:"image"`
		Runtime struct {
			Goroutines     int    `json:"goroutines"`
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"runtime"`
		ServiceUS struct {
			Count uint64 `json:"count"`
			P50   int64  `json:"p50"`
		} `json:"service_us"`
		QueueUS struct {
			Count uint64 `json:"count"`
		} `json:"queue_us"`
		DecodeUS struct {
			Count uint64 `json:"count"`
		} `json:"decode_us"`
		EncodeUS struct {
			Count uint64 `json:"count"`
		} `json:"encode_us"`
		FlightRecorder bool  `json:"flight_recorder"`
		SlowlogUS      int64 `json:"slowlog_us"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if ts, err := time.Parse(time.RFC3339Nano, st.StartTime); err != nil || time.Since(ts) < 0 {
		t.Errorf("start_time %q: %v", st.StartTime, err)
	}
	if st.UptimeS <= 0 {
		t.Errorf("uptime_s = %v", st.UptimeS)
	}
	if st.Image.Mode != "compile" || st.Image.FormatVersion != 1 {
		t.Errorf("image provenance = %+v", st.Image)
	}
	if st.Runtime.Goroutines <= 0 || st.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime gauges = %+v", st.Runtime)
	}
	n := uint64(len(workload.Suite()))
	if st.ServiceUS.Count != n {
		t.Errorf("service_us count = %d, want %d", st.ServiceUS.Count, n)
	}
	if st.DecodeUS.Count != n || st.EncodeUS.Count != n {
		t.Errorf("codec span counts = %d/%d, want %d", st.DecodeUS.Count, st.EncodeUS.Count, n)
	}
	if !st.FlightRecorder {
		t.Error("flight_recorder should be on by default")
	}
	// Sequential /send traffic runs the inline fast lane, so queue_us
	// stays empty — that is the lane working, not a missing stat.
	if st.QueueUS.Count != 0 {
		t.Logf("queue_us count = %d (some requests queued)", st.QueueUS.Count)
	}
}

// newSlowServer is newSuiteServer over a pool whose slow threshold is
// armed at 1ns, so every request is captured — `obarchd -slowlog 1ns`.
func newSlowServer(t *testing.T) (*server, *serve.Pool) {
	t.Helper()
	sys := obarch.NewSystem(obarch.Options{})
	programs := workload.Suite()
	for _, p := range programs {
		if err := sys.Load(p.Src); err != nil {
			t.Fatalf("load %s: %v", p.Name, err)
		}
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	pool := serve.NewPool(snap, serve.Config{Workers: 2, Timeout: 30 * time.Second, SlowThreshold: time.Nanosecond})
	return newServer(pool, programs, snap, ""), pool
}

// TestDebugSlowEndpoint arms a 1ns threshold so every request is slow,
// then checks /debug/slow returns captures with decoded event chains.
func TestDebugSlowEndpoint(t *testing.T) {
	h, pool := newSlowServer(t)
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	driveTraffic(t, ts)

	status, body := get(t, ts, "/debug/slow")
	if status != http.StatusOK {
		t.Fatalf("/debug/slow status %d", status)
	}
	var out struct {
		ThresholdUS int64 `json:"threshold_us"`
		Captures    []struct {
			ID    uint64 `json:"id"`
			Steps uint64 `json:"steps"`
			Stats struct {
				Instructions uint64
			} `json:"stats"`
			Chain []slowEvent `json:"chain"`
		} `json:"captures"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode /debug/slow: %v", err)
	}
	if len(out.Captures) == 0 {
		t.Fatal("no captures under live traffic")
	}
	for i, c := range out.Captures {
		if c.ID == 0 || c.Steps == 0 || c.Stats.Instructions != c.Steps {
			t.Errorf("capture %d: id=%d steps=%d stats=%+v", i, c.ID, c.Steps, c.Stats)
		}
		if len(c.Chain) < 2 {
			t.Errorf("capture %d chain has %d events", i, len(c.Chain))
			continue
		}
		last := c.Chain[len(c.Chain)-1]
		if last.Kind != "exec_end" && last.Kind != "abort" {
			t.Errorf("capture %d chain ends with %q", i, last.Kind)
		}
		for _, ev := range c.Chain {
			if ev.Req != c.ID {
				t.Errorf("capture %d chain holds foreign event %+v", i, ev)
			}
		}
	}
}

// TestPprofGatedByDebugFlag: the profiler is absent by default and
// mounted by mountDebug, as the -debug flag does.
func TestPprofGatedByDebugFlag(t *testing.T) {
	h, pool := newSuiteServer(t, 1, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	if status, _ := get(t, ts, "/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -debug: status %d, want 404", status)
	}
	h.mountDebug()
	if status, body := get(t, ts, "/debug/pprof/"); status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ with -debug: status %d", status)
	}
	if status, _ := get(t, ts, "/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", status)
	}
}

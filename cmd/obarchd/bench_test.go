package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/word"
	"repro/internal/workload"
)

// benchServer stands up the HTTP face over a tiny one-method image so the
// benchmark measures the HTTP request path — routing, decode, pool
// hand-off, encode — rather than the interpreter.
func benchServer(b *testing.B, fast bool) (*httptest.Server, *serve.Pool) {
	b.Helper()
	sys := obarch.NewSystem(obarch.Options{})
	if err := sys.Load(`extend SmallInt [ method double [ ^self + self ] ]`); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.SendInt(21, "double"); err != nil {
		b.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	pool := serve.NewPool(snap, serve.Config{Workers: 1, GCEvery: -1, Timeout: 10 * time.Second})
	h := newServer(pool, []workload.Program{}, snap, "")
	h.fast = fast
	return httptest.NewServer(h), pool
}

// BenchmarkBinarySend measures the same tiny send over the obwire binary
// transport: depth=1 is the synchronous round trip (one frame each way
// per op, two syscalls of latency), depth=64 keeps a pipeline window
// full so framing cost is measured with the syscalls amortised away. The
// delta against BenchmarkHTTPSend/codec=fast is the net/http tax; the
// 0-alloc assertion in CI covers client and server loops together,
// since both run in this process.
func BenchmarkBinarySend(b *testing.B) {
	for _, depth := range []int{1, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			sys := obarch.NewSystem(obarch.Options{})
			if err := sys.Load(`extend SmallInt [ method double [ ^self + self ] ]`); err != nil {
				b.Fatal(err)
			}
			snap, err := sys.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			pool := serve.NewPool(snap, serve.Config{Workers: 1, GCEvery: -1, Timeout: 10 * time.Second})
			defer pool.Close()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			s := obwire.Serve(l, pool, obwire.Options{})
			defer s.Shutdown(context.Background())
			c, err := obwire.Dial(l.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			req := serve.Request{Receiver: word.FromInt(21), Selector: "double"}
			// One warm round trip populates the selector cache and the
			// per-connection buffers on both sides.
			if r, err := c.Do(req); err != nil || !r.OK() {
				b.Fatalf("warm send: %v %v", r, err)
			}
			check := func(r obwire.Response, err error) {
				if err != nil || r.Status != obwire.StatusOK {
					b.Fatalf("send: %v %v", r, err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			if depth == 1 {
				for i := 0; i < b.N; i++ {
					r, err := c.Do(req)
					check(r, err)
				}
				return
			}
			for i := 0; i < b.N; i++ {
				if _, err := c.Send(req); err != nil {
					b.Fatal(err)
				}
				for c.InFlight() >= depth {
					r, err := c.Recv()
					check(r, err)
				}
			}
			for c.InFlight() > 0 {
				r, err := c.Recv()
				check(r, err)
			}
		})
	}
}

// BenchmarkHTTPSend measures one tiny send through the full HTTP stack,
// with the pooled hand-written codec against the encoding/json fallback.
// The delta between the sub-benches is what the fast lane saves per
// request in decoder reflection, buffer churn and encoder allocation.
func BenchmarkHTTPSend(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"json", false}} {
		b.Run("codec="+mode.name, func(b *testing.B) {
			ts, pool := benchServer(b, mode.fast)
			defer pool.Close()
			defer ts.Close()
			client := ts.Client()
			const body = `{"receiver": 21, "selector": "double"}`
			url := ts.URL + "/send"
			// One warm request to populate connection and selector caches.
			resp, err := client.Post(url, "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("warm request status %d", resp.StatusCode)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(url, "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}

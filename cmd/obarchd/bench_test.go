package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// benchServer stands up the HTTP face over a tiny one-method image so the
// benchmark measures the HTTP request path — routing, decode, pool
// hand-off, encode — rather than the interpreter.
func benchServer(b *testing.B, fast bool) (*httptest.Server, *serve.Pool) {
	b.Helper()
	sys := obarch.NewSystem(obarch.Options{})
	if err := sys.Load(`extend SmallInt [ method double [ ^self + self ] ]`); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.SendInt(21, "double"); err != nil {
		b.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	pool := serve.NewPool(snap, serve.Config{Workers: 1, GCEvery: -1, Timeout: 10 * time.Second})
	h := newServer(pool, []workload.Program{}, snap, "")
	h.fast = fast
	return httptest.NewServer(h), pool
}

// BenchmarkHTTPSend measures one tiny send through the full HTTP stack,
// with the pooled hand-written codec against the encoding/json fallback.
// The delta between the sub-benches is what the fast lane saves per
// request in decoder reflection, buffer churn and encoder allocation.
func BenchmarkHTTPSend(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"json", false}} {
		b.Run("codec="+mode.name, func(b *testing.B) {
			ts, pool := benchServer(b, mode.fast)
			defer pool.Close()
			defer ts.Close()
			client := ts.Client()
			const body = `{"receiver": 21, "selector": "double"}`
			url := ts.URL + "/send"
			// One warm request to populate connection and selector caches.
			resp, err := client.Post(url, "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("warm request status %d", resp.StatusCode)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(url, "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
}

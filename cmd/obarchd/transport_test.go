// Mixed-transport chaos soak: the binary listener and the HTTP handler
// share one pool, so a node serving both at once under injected faults
// must conserve accounting across the union of the two traffic streams —
// completed + rejected + shed equals exactly what the clients submitted,
// with every refusal classified identically on either wire.
package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/word"
	"repro/internal/workload"
)

// TestMixedTransportChaosSoak drives concurrent HTTP and obwire clients
// at one chaos-armed pool: stalls and clogs against shallow queues force
// organic admission refusals, hair-trigger deadlines on the binary side
// force sheds, and the union of both streams must conserve exactly:
// requests + rejected + shed_expired == submitted. Run under -race this
// also hammers the shared decode/encode histograms and transport
// counters from both wires at once.
func TestMixedTransportChaosSoak(t *testing.T) {
	h, pool := newConfigServer(t, serve.Config{
		Workers:    2,
		QueueDepth: 2,
		Timeout:    30 * time.Second,
		Faults: &serve.Faults{
			Seed:       7,
			StallEvery: 5,
			Stall:      200 * time.Microsecond,
			ClogEvery:  6,
			Clog:       300 * time.Microsecond,
		},
	})
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bin := obwire.Serve(l, pool, obwire.Options{DecodeLat: &h.decLat, EncodeLat: &h.encLat})

	progs := workload.Suite()
	var submitted, completed, machineFailed, rejected, shed atomic.Int64
	classify := func(status int) {
		switch status {
		case http.StatusOK:
			completed.Add(1)
		case http.StatusUnprocessableEntity:
			machineFailed.Add(1)
		case http.StatusTooManyRequests:
			rejected.Add(1)
		case http.StatusServiceUnavailable:
			shed.Add(1)
		default:
			t.Errorf("unclassifiable status %d", status)
		}
	}

	const (
		httpClients = 3
		binClients  = 3
		rounds      = 3
		window      = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < httpClients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, p := range progs {
					body := fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry)
					resp, err := http.Post(ts.URL+"/send", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("POST /send: %v", err)
						return
					}
					resp.Body.Close()
					submitted.Add(1)
					classify(resp.StatusCode)
				}
			}
		}()
	}
	for g := 0; g < binClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := obwire.Dial(l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			recvOne := func() bool {
				resp, err := c.Recv()
				if err != nil {
					t.Errorf("client %d: recv: %v", g, err)
					return false
				}
				classify(statusFromFrame(resp.Status))
				return true
			}
			for r := 0; r < rounds; r++ {
				for i, p := range progs {
					req := serve.Request{Receiver: word.FromInt(p.Size), Selector: p.Entry}
					if i%4 == 3 {
						// Expired before it can possibly dispatch: a
						// guaranteed shed, answered in-band as StatusShed.
						req.Timeout = time.Nanosecond
					}
					if _, err := c.Send(req); err != nil {
						t.Errorf("client %d: send: %v", g, err)
						return
					}
					submitted.Add(1)
					for c.InFlight() >= window {
						if !recvOne() {
							return
						}
					}
				}
			}
			for c.InFlight() > 0 {
				if !recvOne() {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	bin.Shutdown(t.Context())

	met := pool.Metrics()
	if got, want := completed.Load()+machineFailed.Load(), int64(met.Requests); got != want {
		t.Errorf("executed accounting drifted: %d classified vs %d metrics requests", got, want)
	}
	if got, want := rejected.Load(), int64(met.Rejected); got != want {
		t.Errorf("rejection accounting drifted: %d classified vs %d metrics", got, want)
	}
	if got, want := shed.Load(), int64(met.SheddedExpired); got != want {
		t.Errorf("shed accounting drifted: %d classified vs %d metrics", got, want)
	}
	total := int64(met.Requests + met.Rejected + met.SheddedExpired)
	if total != submitted.Load() {
		t.Errorf("conservation violated: requests(%d) + rejected(%d) + shed(%d) = %d, want %d submitted",
			met.Requests, met.Rejected, met.SheddedExpired, total, submitted.Load())
	}
	if shed.Load() == 0 {
		t.Error("hair-trigger deadlines produced no sheds; the soak exercised nothing")
	}

	bs := bin.Stats()
	binSubmitted := submitted.Load() - int64(httpClients*rounds*len(progs))
	if got := int64(bs.FramesIn); got != binSubmitted {
		t.Errorf("binary frames_in %d, want %d", got, binSubmitted)
	}
	if bs.FramesIn != bs.FramesOut {
		t.Errorf("frames_in %d != frames_out %d: a response was dropped", bs.FramesIn, bs.FramesOut)
	}
	if bs.ProtoErrors != 0 {
		t.Errorf("proto_errors %d on well-formed traffic", bs.ProtoErrors)
	}
}

// statusFromFrame maps an obwire frame status onto the HTTP status the
// same outcome would have produced, pinning the cross-transport contract
// the doc table promises.
func statusFromFrame(s uint8) int {
	switch s {
	case obwire.StatusOK:
		return http.StatusOK
	case obwire.StatusOverloaded:
		return http.StatusTooManyRequests
	case obwire.StatusShed:
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// Mixed-transport chaos soak: the binary listener and the HTTP handler
// share one pool, so a node serving both at once under injected faults
// must conserve accounting across the union of the two traffic streams —
// completed + rejected + shed equals exactly what the clients submitted,
// with every refusal classified identically on either wire.
package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/word"
	"repro/internal/workload"
)

// TestMixedTransportChaosSoak drives concurrent HTTP and obwire clients
// at one chaos-armed pool: stalls and clogs against shallow queues force
// organic admission refusals, hair-trigger deadlines on the binary side
// force sheds, and the union of both streams must conserve exactly:
// requests + rejected + shed_expired == submitted. Run under -race this
// also hammers the shared decode/encode histograms and transport
// counters from both wires at once.
func TestMixedTransportChaosSoak(t *testing.T) {
	h, pool := newConfigServer(t, serve.Config{
		Workers:    2,
		QueueDepth: 2,
		Timeout:    30 * time.Second,
		Faults: &serve.Faults{
			Seed:       7,
			StallEvery: 5,
			Stall:      200 * time.Microsecond,
			ClogEvery:  6,
			Clog:       300 * time.Microsecond,
		},
	})
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bin := obwire.Serve(l, pool, obwire.Options{DecodeLat: &h.decLat, EncodeLat: &h.encLat})

	progs := workload.Suite()
	var submitted, completed, machineFailed, rejected, shed atomic.Int64
	classify := func(status int) {
		switch status {
		case http.StatusOK:
			completed.Add(1)
		case http.StatusUnprocessableEntity:
			machineFailed.Add(1)
		case http.StatusTooManyRequests:
			rejected.Add(1)
		case http.StatusServiceUnavailable:
			shed.Add(1)
		default:
			t.Errorf("unclassifiable status %d", status)
		}
	}

	const (
		httpClients = 3
		binClients  = 3
		rounds      = 3
		window      = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < httpClients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, p := range progs {
					body := fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry)
					resp, err := http.Post(ts.URL+"/send", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("POST /send: %v", err)
						return
					}
					resp.Body.Close()
					submitted.Add(1)
					classify(resp.StatusCode)
				}
			}
		}()
	}
	for g := 0; g < binClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := obwire.Dial(l.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			recvOne := func() bool {
				resp, err := c.Recv()
				if err != nil {
					t.Errorf("client %d: recv: %v", g, err)
					return false
				}
				classify(statusFromFrame(resp.Status))
				return true
			}
			for r := 0; r < rounds; r++ {
				for i, p := range progs {
					req := serve.Request{Receiver: word.FromInt(p.Size), Selector: p.Entry}
					if i%4 == 3 {
						// Expired before it can possibly dispatch: a
						// guaranteed shed, answered in-band as StatusShed.
						req.Timeout = time.Nanosecond
					}
					if _, err := c.Send(req); err != nil {
						t.Errorf("client %d: send: %v", g, err)
						return
					}
					submitted.Add(1)
					for c.InFlight() >= window {
						if !recvOne() {
							return
						}
					}
				}
			}
			for c.InFlight() > 0 {
				if !recvOne() {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	bin.Shutdown(t.Context())

	met := pool.Metrics()
	if got, want := completed.Load()+machineFailed.Load(), int64(met.Requests); got != want {
		t.Errorf("executed accounting drifted: %d classified vs %d metrics requests", got, want)
	}
	if got, want := rejected.Load(), int64(met.Rejected); got != want {
		t.Errorf("rejection accounting drifted: %d classified vs %d metrics", got, want)
	}
	if got, want := shed.Load(), int64(met.SheddedExpired); got != want {
		t.Errorf("shed accounting drifted: %d classified vs %d metrics", got, want)
	}
	total := int64(met.Requests + met.Rejected + met.SheddedExpired)
	if total != submitted.Load() {
		t.Errorf("conservation violated: requests(%d) + rejected(%d) + shed(%d) = %d, want %d submitted",
			met.Requests, met.Rejected, met.SheddedExpired, total, submitted.Load())
	}
	if shed.Load() == 0 {
		t.Error("hair-trigger deadlines produced no sheds; the soak exercised nothing")
	}

	bs := bin.Stats()
	binSubmitted := submitted.Load() - int64(httpClients*rounds*len(progs))
	if got := int64(bs.FramesIn); got != binSubmitted {
		t.Errorf("binary frames_in %d, want %d", got, binSubmitted)
	}
	if bs.FramesIn != bs.FramesOut {
		t.Errorf("frames_in %d != frames_out %d: a response was dropped", bs.FramesIn, bs.FramesOut)
	}
	if bs.ProtoErrors != 0 {
		t.Errorf("proto_errors %d on well-formed traffic", bs.ProtoErrors)
	}
}

// TestDrainAnswersInFlightBinaryFrames pins the shutdown ordering the
// daemon promises: the HTTP listener closing first must not strand the
// binary side — every frame already pipelined into the obwire window
// when graceful drain begins is answered and flushed before the
// connection closes. Stall faults keep the pool slow enough that the
// window is genuinely in flight (dispatched, unanswered) at drain time;
// under -race this also exercises the drain path against the serving
// path.
func TestDrainAnswersInFlightBinaryFrames(t *testing.T) {
	h, pool := newConfigServer(t, serve.Config{
		Workers:    1,
		QueueDepth: 64,
		Timeout:    30 * time.Second,
		Faults: &serve.Faults{
			Seed:       3,
			StallEvery: 1,
			Stall:      2 * time.Millisecond,
		},
	})
	defer pool.Close()
	ts := httptest.NewServer(h)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bin := obwire.Serve(l, pool, obwire.Options{})

	c, err := obwire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fill a window: with one stalled worker, most of these are still
	// queued or executing when the drain starts. The receiver is kept
	// small so the work itself is cheap — the stall fault, not the
	// program, is what holds the window open.
	const inFlight = 32
	for i := 0; i < inFlight; i++ {
		if _, err := c.Send(serve.Request{Receiver: word.FromInt(8), Selector: "benchRecurse"}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// The daemon's shutdown order: the HTTP listener is already gone
	// before the binary listener drains. Closing the test server hard
	// proves the binary drain owes nothing to the HTTP side.
	ts.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		bin.Shutdown(t.Context())
	}()

	// Every pipelined frame must come back, in order, with a real
	// status — none dropped, none stranded behind the closed listener.
	for i := 0; i < inFlight; i++ {
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d during drain: %v (frame stranded)", i, err)
		}
		if resp.ID != uint64(i) {
			t.Fatalf("recv %d: frame id %d out of order", i, resp.ID)
		}
		if resp.Status != obwire.StatusOK {
			t.Fatalf("recv %d: status %d: %s", i, resp.Status, resp.Err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("binary shutdown never finished after answering the window")
	}

	bs := bin.Stats()
	if bs.FramesIn != inFlight || bs.FramesOut != inFlight {
		t.Fatalf("frames in/out = %d/%d, want %d/%d", bs.FramesIn, bs.FramesOut, inFlight, inFlight)
	}
	if bs.ProtoErrors != 0 {
		t.Fatalf("proto_errors %d during graceful drain", bs.ProtoErrors)
	}
}

// statusFromFrame maps an obwire frame status onto the HTTP status the
// same outcome would have produced, pinning the cross-transport contract
// the doc table promises.
func statusFromFrame(s uint8) int {
	switch s {
	case obwire.StatusOK:
		return http.StatusOK
	case obwire.StatusOverloaded:
		return http.StatusTooManyRequests
	case obwire.StatusShed:
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

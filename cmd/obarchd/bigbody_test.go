package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRequestBodyCap pins the buffered-body bound: a body over
// maxRequestBody is refused instead of being buffered to EOF.
func TestRequestBodyCap(t *testing.T) {
	h, pool := newSuiteServer(t, 1, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()
	huge := `{"receiver": 21, "selector": "` + strings.Repeat("x", maxRequestBody) + `"}`
	resp, err := http.Post(ts.URL+"/send", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatalf("POST huge body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge body: status %d, want 400", resp.StatusCode)
	}
}

// The pooled HTTP fast lane: a hand-written codec for the fixed /send
// and /batch wire shapes. The generic encoding/json path walks reflection
// metadata and allocates a fresh decoder, token buffers and response
// buffers per request; this codec parses the known shape directly out of
// a pooled body buffer, interns selectors, and renders responses into a
// pooled output buffer — byte-identical to what encoding/json produces
// for the same values (proven by TestFastwireParity).
//
// The fast parser is deliberately narrow: anything it does not fully
// recognise — escaped strings, unknown fields, numbers that need the
// wordOf error text, malformed JSON — makes it bail, and the handler
// falls back to the original encoding/json path, which either serves the
// request or produces the exact error the old server produced. The fast
// path therefore never accepts input the slow path would reject, and
// never rejects input the slow path would accept.
package main

import (
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/serve"
	"repro/internal/word"
)

// codec is the per-request scratch state: body and output buffers, the
// parsed-argument arena, the batch request slice, and the selector
// intern table. Recycled through codecPool so a warm server's request
// lifecycle performs no heap allocation in the common case.
type codec struct {
	body []byte
	out  []byte
	args []word.Word
	reqs []serve.Request
	sels map[string]string
}

var codecPool = sync.Pool{
	New: func() any { return &codec{sels: make(map[string]string)} },
}

func getCodec() *codec { return codecPool.Get().(*codec) }

func putCodec(c *codec) {
	// Do not let one pathological request pin a huge buffer (or an
	// unbounded intern table) in the pool forever.
	if cap(c.body) > 1<<20 {
		c.body = nil
	}
	if cap(c.out) > 1<<20 {
		c.out = nil
	}
	if len(c.sels) > 4096 {
		c.sels = make(map[string]string)
	}
	if cap(c.args) > 1<<16 {
		c.args = nil
	}
	if cap(c.reqs) > 1<<12 {
		c.reqs = nil
	}
	c.args = c.args[:0]
	c.reqs = c.reqs[:0]
	codecPool.Put(c)
}

// maxRequestBody caps how much of a /send or /batch body is buffered.
// The old streaming decoder stopped at the first complete JSON value;
// buffering to EOF without a cap would let one client OOM the daemon.
// 8 MB comfortably holds a six-figure batch of sends.
const maxRequestBody = 8 << 20

// readBody drains the request body into the codec's reusable buffer.
// Callers must have wrapped the body with http.MaxBytesReader, so the
// read loop is bounded.
func (c *codec) readBody(r *http.Request) ([]byte, error) {
	b := c.body[:0]
	if n := r.ContentLength; n > int64(cap(b)) && n < 1<<20 {
		b = make([]byte, 0, n)
	}
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			c.body = b
			return b, nil
		}
		if err != nil {
			c.body = b
			return nil, err
		}
	}
}

// intern returns a selector string for the raw bytes without allocating
// when the selector has been seen before (the steady state: a serving
// workload uses a small fixed selector set).
func (c *codec) intern(b []byte) string {
	if s, ok := c.sels[string(b)]; ok {
		return s
	}
	s := string(b)
	c.sels[s] = s
	return s
}

// parser walks a byte slice. All parse methods report failure by
// returning ok=false, which makes the handler fall back to encoding/json.
type parser struct {
	b   []byte
	pos int
}

func (p *parser) ws() {
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes one expected byte.
func (p *parser) eat(c byte) bool {
	if p.pos < len(p.b) && p.b[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// peek returns the next byte without consuming it.
func (p *parser) peek() (byte, bool) {
	if p.pos < len(p.b) {
		return p.b[p.pos], true
	}
	return 0, false
}

// simpleString parses a JSON string with no escapes and no control
// bytes, returning the raw contents. Escaped strings — and invalid
// UTF-8, which json.Unmarshal would coerce to U+FFFD rather than pass
// through — bail to the fallback parser.
func (p *parser) simpleString() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.pos
	for p.pos < len(p.b) {
		switch c := p.b[p.pos]; {
		case c == '"':
			s := p.b[start:p.pos]
			p.pos++
			if !utf8.Valid(s) {
				return nil, false
			}
			return s, true
		case c == '\\' || c < 0x20:
			return nil, false
		default:
			p.pos++
		}
	}
	return nil, false
}

// number scans one JSON number token and reports whether it carries a
// fraction or exponent. The scan enforces the JSON number grammar, so
// the fast path never accepts literals ("007", ".5", "+1") that
// encoding/json would reject.
func (p *parser) number() (seg []byte, isFloat, ok bool) {
	start := p.pos
	p.eat('-')
	switch c, haveC := p.peek(); {
	case !haveC:
		return nil, false, false
	case c == '0':
		p.pos++
	case c >= '1' && c <= '9':
		for {
			c, haveC := p.peek()
			if !haveC || c < '0' || c > '9' {
				break
			}
			p.pos++
		}
	default:
		return nil, false, false
	}
	if c, haveC := p.peek(); haveC && c == '.' {
		isFloat = true
		p.pos++
		n := 0
		for {
			c, haveC := p.peek()
			if !haveC || c < '0' || c > '9' {
				break
			}
			p.pos++
			n++
		}
		if n == 0 {
			return nil, false, false
		}
	}
	if c, haveC := p.peek(); haveC && (c == 'e' || c == 'E') {
		isFloat = true
		p.pos++
		if c, haveC := p.peek(); haveC && (c == '+' || c == '-') {
			p.pos++
		}
		n := 0
		for {
			c, haveC := p.peek()
			if !haveC || c < '0' || c > '9' {
				break
			}
			p.pos++
			n++
		}
		if n == 0 {
			return nil, false, false
		}
	}
	return p.b[start:p.pos], isFloat, true
}

// numberWord parses a number with wordOf's semantics: integer literals
// become SmallInts, fractional/exponent literals become Floats. Integers
// outside the 32-bit machine word bail (the fallback produces the
// descriptive 400 the old path produced).
func (p *parser) numberWord() (word.Word, bool) {
	seg, isFloat, ok := p.number()
	if !ok {
		return word.Word{}, false
	}
	if isFloat {
		f, err := strconv.ParseFloat(string(seg), 64)
		if err != nil {
			return word.Word{}, false
		}
		return word.FromFloat(float32(f)), true
	}
	i, ok := parseInt64(seg)
	if !ok || int64(int32(i)) != i {
		return word.Word{}, false
	}
	return word.FromInt(int32(i)), true
}

// parseInt64 converts an already-grammar-checked integer token. Overflow
// is caught before each multiply-add — a wrapped accumulator would pass a
// post-hoc range check with a corrupted value.
func parseInt64(seg []byte) (int64, bool) {
	neg := false
	i := 0
	if len(seg) > 0 && seg[0] == '-' {
		neg = true
		i = 1
	}
	const cutoff = uint64(1) << 63 // one past MaxInt64; exactly -MinInt64
	var v uint64
	for ; i < len(seg); i++ {
		d := uint64(seg[i] - '0')
		if v > (cutoff-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	if neg {
		if v == cutoff {
			return math.MinInt64, true
		}
		return -int64(v), true
	}
	if v >= cutoff {
		return 0, false
	}
	return int64(v), true
}

// uintField parses a non-negative integer (key, max_steps).
func (p *parser) uintField() (uint64, bool) {
	seg, isFloat, ok := p.number()
	if !ok || isFloat || (len(seg) > 0 && seg[0] == '-') {
		return 0, false
	}
	var v uint64
	for _, c := range seg {
		d := uint64(c - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// intField parses a signed integer (timeout_ms).
func (p *parser) intField() (int64, bool) {
	seg, isFloat, ok := p.number()
	if !ok || isFloat {
		return 0, false
	}
	return parseInt64(seg)
}

// sendObject parses one send-request object into a serve.Request whose
// Args alias the codec's argument arena (valid until the codec is
// recycled, i.e. for the synchronous life of the HTTP request).
func (p *parser) sendObject(c *codec) (serve.Request, bool) {
	var req serve.Request
	haveRecv, haveSel := false, false
	p.ws()
	if !p.eat('{') {
		return req, false
	}
	p.ws()
	if p.eat('}') {
		return req, false // missing selector; let the fallback say so
	}
	for {
		p.ws()
		key, ok := p.simpleString()
		if !ok {
			return req, false
		}
		p.ws()
		if !p.eat(':') {
			return req, false
		}
		p.ws()
		switch string(key) {
		case "receiver":
			req.Receiver, ok = p.numberWord()
			haveRecv = true
		case "selector":
			var sel []byte
			if sel, ok = p.simpleString(); ok {
				req.Selector = c.intern(sel)
				haveSel = true
			}
		case "args":
			start := len(c.args)
			if ok = p.eat('['); !ok {
				return req, false
			}
			p.ws()
			if !p.eat(']') {
				for {
					w, wok := p.numberWord()
					if !wok {
						return req, false
					}
					c.args = append(c.args, w)
					p.ws()
					if p.eat(']') {
						break
					}
					if !p.eat(',') {
						return req, false
					}
					p.ws()
				}
			}
			req.Args = c.args[start:len(c.args):len(c.args)]
		case "key":
			req.Key, ok = p.uintField()
		case "max_steps":
			req.MaxSteps, ok = p.uintField()
		case "timeout_ms":
			var ms int64
			if ms, ok = p.intField(); ok {
				req.Timeout = time.Duration(ms) * time.Millisecond
			}
		default:
			return req, false // unknown field: let encoding/json decide
		}
		if !ok {
			return req, false
		}
		p.ws()
		if p.eat('}') {
			break
		}
		if !p.eat(',') {
			return req, false
		}
	}
	if !haveRecv || !haveSel || req.Selector == "" {
		return req, false // fallback produces the descriptive 400
	}
	return req, true
}

// parseSend parses a complete /send body. Trailing bytes after the
// object are ignored, as json.Decoder.Decode ignores them.
func parseSend(body []byte, c *codec) (serve.Request, bool) {
	p := parser{b: body}
	return p.sendObject(c)
}

// parseBatch parses a complete /batch body — an array of send objects —
// into the codec's request slice.
func parseBatch(body []byte, c *codec) ([]serve.Request, bool) {
	p := parser{b: body}
	p.ws()
	if !p.eat('[') {
		return nil, false
	}
	p.ws()
	if p.eat(']') {
		return c.reqs[:0], true
	}
	reqs := c.reqs[:0]
	for {
		req, ok := p.sendObject(c)
		if !ok {
			return nil, false
		}
		reqs = append(reqs, req)
		p.ws()
		if p.eat(']') {
			break
		}
		if !p.eat(',') {
			return nil, false
		}
	}
	c.reqs = reqs
	return reqs, true
}

// ---- encoding ----

const hexDigits = "0123456789abcdef"

// appendJSONString renders s exactly as encoding/json does with its
// default HTML escaping: ", \ and control bytes escaped (with the \n,
// \r, \t shorthands), <, > and & as \u00XX, invalid UTF-8 as the
// six-byte � escape, and U+2028/U+2029 escaped for
// script-embedding safety.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// encoding/json writes the six-byte escape, not the raw
			// replacement-character bytes.
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, `\u202`...)
			b = append(b, hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat32 renders a float32 exactly as encoding/json does:
// shortest 32-bit representation, 'f' form inside [1e-6, 1e21), 'e'
// form outside it with the exponent's leading zero trimmed. Non-finite
// values return ok=false (encoding/json refuses them; the caller falls
// back so the behaviour matches).
func appendJSONFloat32(b []byte, v float32) ([]byte, bool) {
	f := float64(v)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (float32(abs) < 1e-6 || float32(abs) >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 32)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// appendWord renders a machine value with jsonOf's mapping.
func appendWord(b []byte, v word.Word) ([]byte, bool) {
	if i, ok := v.IntOK(); ok {
		return strconv.AppendInt(b, int64(i), 10), true
	}
	if f, ok := v.FloatOK(); ok {
		return appendJSONFloat32(b, f)
	}
	switch v {
	case word.True:
		return append(b, "true"...), true
	case word.False:
		return append(b, "false"...), true
	case word.Nil:
		return append(b, "null"...), true
	}
	return appendJSONString(b, v.String()), true
}

// appendSendResponse renders one result byte-identically to
// writeJSON(toResponse(res)) minus the trailing newline the caller adds.
// ok=false means the value cannot be fast-encoded (non-finite float) and
// the caller must fall back.
func appendSendResponse(b []byte, res serve.Result) ([]byte, bool) {
	b = append(b, `{"result":`...)
	if res.Err != nil {
		b = append(b, `null,"error":`...)
		b = appendJSONString(b, res.Err.Error())
	} else {
		var ok bool
		if b, ok = appendWord(b, res.Value); !ok {
			return b, false
		}
	}
	b = append(b, `,"worker":`...)
	b = strconv.AppendInt(b, int64(res.Worker), 10)
	b = append(b, `,"steps":`...)
	b = strconv.AppendUint(b, res.Steps, 10)
	b = append(b, `,"cycles":`...)
	b = strconv.AppendUint(b, res.Cycles, 10)
	b = append(b, `,"latency_us":`...)
	b = strconv.AppendInt(b, res.Latency.Microseconds(), 10)
	return append(b, '}'), true
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// newSuiteServer builds the handler over a pool serving the full workload
// suite, exactly as `obarchd` with default flags would. imagePath wires
// the POST /save endpoint; empty disables it.
func newSuiteServer(t *testing.T, workers int, imagePath string) (*server, *serve.Pool) {
	t.Helper()
	sys := obarch.NewSystem(obarch.Options{})
	programs := workload.Suite()
	for _, p := range programs {
		if err := sys.Load(p.Src); err != nil {
			t.Fatalf("load %s: %v", p.Name, err)
		}
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	pool := serve.NewPool(snap, serve.Config{Workers: workers, Timeout: 30 * time.Second})
	return newServer(pool, programs, snap, imagePath), pool
}

func postSend(t *testing.T, ts *httptest.Server, body string) (int, sendResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/send", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /send: %v", err)
	}
	defer resp.Body.Close()
	var out sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /send response: %v", err)
	}
	return resp.StatusCode, out
}

// TestServerEndToEndConcurrent is the acceptance run: 8 concurrent HTTP
// clients replay the full workload suite and validate every checksum.
func TestServerEndToEndConcurrent(t *testing.T) {
	h, pool := newSuiteServer(t, 4, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, p := range workload.Suite() {
				body := fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry)
				status, out := postSend(t, ts, body)
				if status != http.StatusOK {
					t.Errorf("client %d: %s: status %d (%s)", g, p.Name, status, out.Error)
					return
				}
				got, ok := out.Result.(float64)
				if !ok {
					t.Errorf("client %d: %s: non-numeric result %v", g, p.Name, out.Result)
					return
				}
				if int32(got) != p.Check {
					t.Errorf("client %d: %s checksum %d, want %d", g, p.Name, int32(got), p.Check)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The stats endpoint reflects the traffic.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Requests uint64  `json:"requests"`
		Errors   uint64  `json:"errors"`
		ITLB     float64 `json:"itlb_hit_ratio"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if want := uint64(clients * len(workload.Suite())); stats.Requests != want {
		t.Fatalf("/stats saw %d requests, want %d", stats.Requests, want)
	}
	if stats.Errors != 0 {
		t.Fatalf("/stats saw %d errors", stats.Errors)
	}
}

func TestServerSendWithArgsAndErrors(t *testing.T) {
	h, pool := newSuiteServer(t, 1, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Primitive send with an argument.
	status, out := postSend(t, ts, `{"receiver": 40, "selector": "+", "args": [2]}`)
	if status != http.StatusOK {
		t.Fatalf("40 + 2: status %d (%s)", status, out.Error)
	}
	if got, ok := out.Result.(float64); !ok || got != 42 {
		t.Fatalf("40 + 2 = %v", out.Result)
	}

	// doesNotUnderstand surfaces as a machine error, not a transport one.
	status, out = postSend(t, ts, `{"receiver": 1, "selector": "noSuchSelector"}`)
	if status != http.StatusUnprocessableEntity || out.Error == "" {
		t.Fatalf("unknown selector: status %d, error %q", status, out.Error)
	}

	// A per-request step budget bounds a heavy request.
	status, out = postSend(t, ts, `{"receiver": 800, "selector": "benchArith", "max_steps": 50}`)
	if status != http.StatusUnprocessableEntity || !strings.Contains(out.Error, "step limit") {
		t.Fatalf("tiny budget: status %d, error %q", status, out.Error)
	}

	// Malformed JSON is a 400.
	resp, err := http.Post(ts.URL+"/send", "application/json", bytes.NewReader([]byte(`{`)))
	if err != nil {
		t.Fatalf("POST bad JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
}

func TestServerProgramsAndHealth(t *testing.T) {
	h, pool := newSuiteServer(t, 1, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/programs")
	if err != nil {
		t.Fatalf("GET /programs: %v", err)
	}
	var progs []programInfo
	if err := json.NewDecoder(resp.Body).Decode(&progs); err != nil {
		t.Fatalf("decode /programs: %v", err)
	}
	resp.Body.Close()
	if len(progs) != len(workload.Suite()) {
		t.Fatalf("/programs listed %d programs, want %d", len(progs), len(workload.Suite()))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats?format=text")
	if err != nil {
		t.Fatalf("GET /stats?format=text: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "serving pool") {
		t.Fatalf("text stats missing table header:\n%s", buf.String())
	}
}

// TestServerBatchEndpoint replays the suite through POST /batch and
// validates order preservation, per-request checksums, and inline error
// reporting for a failing entry in the middle of an otherwise good batch.
func TestServerBatchEndpoint(t *testing.T) {
	h, pool := newSuiteServer(t, 2, "")
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	programs := workload.Suite()
	var batch []map[string]any
	for _, p := range programs {
		batch = append(batch, map[string]any{"receiver": p.Size, "selector": p.Entry})
	}
	batch = append(batch, map[string]any{"receiver": 1, "selector": "noSuchSelector"})
	body, _ := json.Marshal(batch)

	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /batch response: %v", err)
	}
	if len(out) != len(batch) {
		t.Fatalf("got %d results for %d requests", len(out), len(batch))
	}
	for i, p := range programs {
		if out[i].Error != "" {
			t.Fatalf("%s: %s", p.Name, out[i].Error)
		}
		got, ok := out[i].Result.(float64)
		if !ok || int32(got) != p.Check {
			t.Fatalf("%s: result %v, want %d", p.Name, out[i].Result, p.Check)
		}
	}
	if last := out[len(out)-1]; last.Error == "" {
		t.Fatalf("doesNotUnderstand request reported no error")
	}

	// Malformed batches are rejected wholesale.
	resp2, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`[{"receiver": 1}]`))
	if err != nil {
		t.Fatalf("POST bad /batch: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", resp2.StatusCode)
	}
}

// TestServerSaveAndWarmBoot is the persistence acceptance path: POST /save
// writes the image, a second daemon cold-boots from that file (no
// compile), and the disk-booted pool serves the whole suite with correct
// checksums.
func TestServerSaveAndWarmBoot(t *testing.T) {
	imagePath := filepath.Join(t.TempDir(), "com.img")
	h, pool := newSuiteServer(t, 2, imagePath)
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/save", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /save: %v", err)
	}
	var saved struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&saved); err != nil {
		t.Fatalf("decode /save response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/save status %d", resp.StatusCode)
	}
	if fi, err := os.Stat(imagePath); err != nil || fi.Size() != saved.Bytes || saved.Bytes == 0 {
		t.Fatalf("/save reported %d bytes at %s; stat: %v", saved.Bytes, saved.Path, err)
	}

	// Boot a second server from the image, exactly as `obarchd -image`
	// does, and replay the suite against it.
	snap, programs, boot, err := bootSnapshot(imagePath, "", true, nil)
	if err != nil {
		t.Fatalf("boot from image: %v", err)
	}
	if boot.Mode != "warm" || boot.ImagePath != imagePath || boot.FormatVersion == 0 {
		t.Fatalf("boot info = %+v, want a warm boot from %s", boot, imagePath)
	}
	pool2 := serve.NewPool(snap, serve.Config{Workers: 2, Timeout: 30 * time.Second})
	defer pool2.Close()
	ts2 := httptest.NewServer(newServer(pool2, programs, snap, imagePath))
	defer ts2.Close()
	for _, p := range workload.Suite() {
		status, out := postSendTo(t, ts2, fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry))
		if status != http.StatusOK {
			t.Fatalf("disk boot: %s: status %d (%s)", p.Name, status, out.Error)
		}
		if got, ok := out.Result.(float64); !ok || int32(got) != p.Check {
			t.Fatalf("disk boot: %s checksum %v, want %d", p.Name, out.Result, p.Check)
		}
	}

	// A server without -image rejects /save instead of writing anywhere.
	h3, pool3 := newSuiteServer(t, 1, "")
	defer pool3.Close()
	ts3 := httptest.NewServer(h3)
	defer ts3.Close()
	resp3, err := http.Post(ts3.URL+"/save", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /save (no path): %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("/save without -image: status %d, want 400", resp3.StatusCode)
	}
}

// postSendTo is postSend against an explicit test server.
func postSendTo(t *testing.T, ts *httptest.Server, body string) (int, sendResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/send", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /send: %v", err)
	}
	defer resp.Body.Close()
	var out sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /send response: %v", err)
	}
	return resp.StatusCode, out
}

// TestServerGracefulShutdown exercises the SIGTERM path end to end:
// serveAndDrain must stop the listener, let in-flight HTTP requests
// finish, drain the pool's queues, and leave the pool closed — with every
// accepted request served rather than dropped.
func TestServerGracefulShutdown(t *testing.T) {
	h, pool := newSuiteServer(t, 2, "")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	sig := make(chan os.Signal, 1)
	served := make(chan struct{})
	go func() {
		defer close(served)
		h.serveAndDrain(srv, l, 10*time.Second, sig)
	}()

	// Keep a batch of requests in flight while the signal lands.
	base := "http://" + l.Addr().String()
	p := workload.Suite()[0]
	const inflight = 16
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry)
			resp, err := http.Post(base+"/send", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out sendResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if got, ok := out.Result.(float64); !ok || int32(got) != p.Check {
				errs <- fmt.Errorf("checksum %v, want %d", out.Result, p.Check)
			}
		}()
	}
	// Signal only after every request is visible to the pool (queued or
	// already served): http.Server.Shutdown closes connections that have
	// not yet delivered request bytes, so signalling earlier would race
	// the posts themselves rather than exercise the drain path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		accepted := int(pool.Metrics().Requests)
		for _, d := range pool.QueueDepths() {
			accepted += d
		}
		if accepted >= inflight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests reached the pool", accepted, inflight)
		}
		time.Sleep(time.Millisecond)
	}
	sig <- os.Interrupt
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("in-flight request during shutdown: %v", err)
	}

	select {
	case <-served:
	case <-time.After(15 * time.Second):
		t.Fatal("serveAndDrain did not return after the signal")
	}
	// The pool is closed and drained: accepted work was served, new work
	// is refused.
	if res := pool.Do(serve.Request{Receiver: obarch.Int(1), Selector: "+", Args: []obarch.Value{obarch.Int(1)}}); !errors.Is(res.Err, serve.ErrClosed) {
		t.Fatalf("pool accepted work after shutdown: %v", res.Err)
	}
	met := pool.Metrics()
	if met.Requests < inflight {
		t.Fatalf("pool served %d of %d accepted requests", met.Requests, inflight)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// newSuiteServer builds the handler over a pool serving the full workload
// suite, exactly as `obarchd` with default flags would.
func newSuiteServer(t *testing.T, workers int) (*server, *serve.Pool) {
	t.Helper()
	sys := obarch.NewSystem(obarch.Options{})
	programs := workload.Suite()
	for _, p := range programs {
		if err := sys.Load(p.Src); err != nil {
			t.Fatalf("load %s: %v", p.Name, err)
		}
	}
	pool, err := sys.ServePoolWith(serve.Config{Workers: workers, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	return newServer(pool, programs), pool
}

func postSend(t *testing.T, ts *httptest.Server, body string) (int, sendResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/send", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /send: %v", err)
	}
	defer resp.Body.Close()
	var out sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /send response: %v", err)
	}
	return resp.StatusCode, out
}

// TestServerEndToEndConcurrent is the acceptance run: 8 concurrent HTTP
// clients replay the full workload suite and validate every checksum.
func TestServerEndToEndConcurrent(t *testing.T) {
	h, pool := newSuiteServer(t, 4)
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, p := range workload.Suite() {
				body := fmt.Sprintf(`{"receiver": %d, "selector": %q}`, p.Size, p.Entry)
				status, out := postSend(t, ts, body)
				if status != http.StatusOK {
					t.Errorf("client %d: %s: status %d (%s)", g, p.Name, status, out.Error)
					return
				}
				got, ok := out.Result.(float64)
				if !ok {
					t.Errorf("client %d: %s: non-numeric result %v", g, p.Name, out.Result)
					return
				}
				if int32(got) != p.Check {
					t.Errorf("client %d: %s checksum %d, want %d", g, p.Name, int32(got), p.Check)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The stats endpoint reflects the traffic.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var stats struct {
		Requests uint64  `json:"requests"`
		Errors   uint64  `json:"errors"`
		ITLB     float64 `json:"itlb_hit_ratio"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if want := uint64(clients * len(workload.Suite())); stats.Requests != want {
		t.Fatalf("/stats saw %d requests, want %d", stats.Requests, want)
	}
	if stats.Errors != 0 {
		t.Fatalf("/stats saw %d errors", stats.Errors)
	}
}

func TestServerSendWithArgsAndErrors(t *testing.T) {
	h, pool := newSuiteServer(t, 1)
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Primitive send with an argument.
	status, out := postSend(t, ts, `{"receiver": 40, "selector": "+", "args": [2]}`)
	if status != http.StatusOK {
		t.Fatalf("40 + 2: status %d (%s)", status, out.Error)
	}
	if got, ok := out.Result.(float64); !ok || got != 42 {
		t.Fatalf("40 + 2 = %v", out.Result)
	}

	// doesNotUnderstand surfaces as a machine error, not a transport one.
	status, out = postSend(t, ts, `{"receiver": 1, "selector": "noSuchSelector"}`)
	if status != http.StatusUnprocessableEntity || out.Error == "" {
		t.Fatalf("unknown selector: status %d, error %q", status, out.Error)
	}

	// A per-request step budget bounds a heavy request.
	status, out = postSend(t, ts, `{"receiver": 800, "selector": "benchArith", "max_steps": 50}`)
	if status != http.StatusUnprocessableEntity || !strings.Contains(out.Error, "step limit") {
		t.Fatalf("tiny budget: status %d, error %q", status, out.Error)
	}

	// Malformed JSON is a 400.
	resp, err := http.Post(ts.URL+"/send", "application/json", bytes.NewReader([]byte(`{`)))
	if err != nil {
		t.Fatalf("POST bad JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
}

func TestServerProgramsAndHealth(t *testing.T) {
	h, pool := newSuiteServer(t, 1)
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/programs")
	if err != nil {
		t.Fatalf("GET /programs: %v", err)
	}
	var progs []programInfo
	if err := json.NewDecoder(resp.Body).Decode(&progs); err != nil {
		t.Fatalf("decode /programs: %v", err)
	}
	resp.Body.Close()
	if len(progs) != len(workload.Suite()) {
		t.Fatalf("/programs listed %d programs, want %d", len(progs), len(workload.Suite()))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats?format=text")
	if err != nil {
		t.Fatalf("GET /stats?format=text: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "serving pool") {
		t.Fatalf("text stats missing table header:\n%s", buf.String())
	}
}

// TestServerBatchEndpoint replays the suite through POST /batch and
// validates order preservation, per-request checksums, and inline error
// reporting for a failing entry in the middle of an otherwise good batch.
func TestServerBatchEndpoint(t *testing.T) {
	h, pool := newSuiteServer(t, 2)
	defer pool.Close()
	ts := httptest.NewServer(h)
	defer ts.Close()

	programs := workload.Suite()
	var batch []map[string]any
	for _, p := range programs {
		batch = append(batch, map[string]any{"receiver": p.Size, "selector": p.Entry})
	}
	batch = append(batch, map[string]any{"receiver": 1, "selector": "noSuchSelector"})
	body, _ := json.Marshal(batch)

	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /batch response: %v", err)
	}
	if len(out) != len(batch) {
		t.Fatalf("got %d results for %d requests", len(out), len(batch))
	}
	for i, p := range programs {
		if out[i].Error != "" {
			t.Fatalf("%s: %s", p.Name, out[i].Error)
		}
		got, ok := out[i].Result.(float64)
		if !ok || int32(got) != p.Check {
			t.Fatalf("%s: result %v, want %d", p.Name, out[i].Result, p.Check)
		}
	}
	if last := out[len(out)-1]; last.Error == "" {
		t.Fatalf("doesNotUnderstand request reported no error")
	}

	// Malformed batches are rejected wholesale.
	resp2, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`[{"receiver": 1}]`))
	if err != nil {
		t.Fatalf("POST bad /batch: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch status %d, want 400", resp2.StatusCode)
	}
}

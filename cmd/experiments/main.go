// Command experiments regenerates the paper's figures and tables.
//
//	experiments            # the full report
//	experiments fig10 t6   # selected experiments
//	experiments -list      # available ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(obarch.Experiments(), "\n"))
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		if err := obarch.RunAllExperiments(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range ids {
		if err := obarch.RunExperiment(id, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

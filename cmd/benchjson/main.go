// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so CI runs leave machine-readable performance data
// points behind instead of scrollback:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH_PR2.json
//
// Each benchmark line becomes one record carrying the benchmark name (the
// -8 GOMAXPROCS suffix stripped), iteration count, ns/op, allocs/op and
// B/op when -benchmem is on, and any custom metrics (instrs/send, ns/instr,
// …) under "metrics". The goos/goarch/cpu header lines are captured into
// "env" so reports from different hosts are distinguishable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Env        map[string]string `json:"env"`
	Benchmarks []record          `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output file")
	flag.Parse()

	rep := report{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				rep.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := record{Name: name, Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report, so CI runs leave machine-readable performance data
// points behind instead of scrollback:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH_PR3.json
//
// Each benchmark line becomes one record carrying the benchmark name (the
// -8 GOMAXPROCS suffix stripped), iteration count, ns/op, allocs/op and
// B/op when -benchmem is on, and any custom metrics (instrs/send, ns/instr,
// …) under "metrics". The goos/goarch/cpu header lines are captured into
// "env" so reports from different hosts are distinguishable.
//
// With -baseline it additionally diffs headline metrics against an earlier
// report and exits non-zero on regression, which is how CI gates a PR on
// its predecessor's numbers:
//
//	... | benchjson -out BENCH_PR3.json -baseline BENCH_PR2.json \
//	        -compare InterpreterInnerLoop:ns/instr \
//	        -compare PoolThroughput/workers=1:ns_per_op
//
// Each -compare takes name:metric, where metric is ns_per_op or a custom
// metric's unit; the check fails when the new value exceeds the baseline by
// more than -tolerance (default 10%). Lower is assumed better — these are
// all time-per-work metrics.
//
// -assertalloc name:max gates allocation counts against an absolute bar
// rather than a baseline: the named benchmark must have been run with
// -benchmem and must report at most max allocs/op. This is how CI holds
// the serving pool's zero-allocation request lifecycle at exactly 0:
//
//	... | benchjson -out BENCH_PR5.json \
//	        -assertalloc 'PoolDoParallel/lifecycle=pooled:0' \
//	        -assertalloc 'PoolGo/lifecycle=pooled:0'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Env        map[string]string `json:"env"`
	Benchmarks []record          `json:"benchmarks"`
}

// find returns the record with the given name.
func (r *report) find(name string) (record, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return record{}, false
}

// metric extracts a metric from a record: "ns_per_op" or a custom unit.
func (b record) metric(name string) (float64, bool) {
	if name == "ns_per_op" {
		return b.NsPerOp, true
	}
	v, ok := b.Metrics[name]
	return v, ok
}

// compareList collects repeated -compare name:metric flags.
type compareList []string

func (c *compareList) String() string     { return strings.Join(*c, ",") }
func (c *compareList) Set(v string) error { *c = append(*c, v); return nil }

func main() {
	out := flag.String("out", "BENCH_PR3.json", "output file")
	baseline := flag.String("baseline", "", "baseline report to diff headline metrics against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression vs the baseline")
	var compares compareList
	flag.Var(&compares, "compare", "name:metric to gate against the baseline (repeatable)")
	var allocAsserts compareList
	flag.Var(&allocAsserts, "assertalloc", "name:max — fail when the benchmark reports more than max allocs/op, or no alloc count at all (repeatable)")
	flag.Parse()

	rep := report{Env: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+":"); ok {
				rep.Env[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := record{Name: name, Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				b := v
				r.BytesPerOp = &b
			case "allocs/op":
				a := v
				r.AllocsOp = &a
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)

	allocFailed := false
	for _, spec := range allocAsserts {
		name, maxStr, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -assertalloc %q (want name:max)\n", spec)
			os.Exit(1)
		}
		maxAllocs, err := strconv.ParseFloat(maxStr, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -assertalloc bound %q: %v\n", maxStr, err)
			os.Exit(1)
		}
		rec, ok := rep.find(name)
		switch {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchjson: %s: missing from this run (alloc gate)\n", name)
			allocFailed = true
		case rec.AllocsOp == nil:
			// No alloc column means the run forgot -benchmem; a silent
			// pass here would disarm the gate.
			fmt.Fprintf(os.Stderr, "benchjson: %s: no allocs/op recorded (run with -benchmem)\n", name)
			allocFailed = true
		case *rec.AllocsOp > maxAllocs:
			fmt.Fprintf(os.Stderr, "benchjson: %-40s allocs/op %12.2f > %12.2f  ALLOC REGRESSION\n",
				name, *rec.AllocsOp, maxAllocs)
			allocFailed = true
		default:
			fmt.Fprintf(os.Stderr, "benchjson: %-40s allocs/op %12.2f <= %12.2f  ok\n",
				name, *rec.AllocsOp, maxAllocs)
		}
	}
	if *baseline == "" {
		if allocFailed {
			os.Exit(1)
		}
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		os.Exit(1)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		os.Exit(1)
	}
	failed := false
	for _, spec := range compares {
		name, metric, ok := strings.Cut(spec, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -compare %q (want name:metric)\n", spec)
			os.Exit(1)
		}
		oldRec, ok := base.find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: not in baseline %s, skipping\n", name, *baseline)
			continue
		}
		newRec, ok := rep.find(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s: missing from this run\n", name)
			failed = true
			continue
		}
		oldV, okOld := oldRec.metric(metric)
		if !okOld || oldV <= 0 {
			// A baseline predating the metric cannot gate it.
			fmt.Fprintf(os.Stderr, "benchjson: %s: metric %s not in baseline, skipping\n", name, metric)
			continue
		}
		newV, okNew := newRec.metric(metric)
		if !okNew {
			// The gated metric vanished from this run — that is a broken
			// gate, not a pass.
			fmt.Fprintf(os.Stderr, "benchjson: %s: metric %s missing from this run\n", name, metric)
			failed = true
			continue
		}
		change := newV/oldV - 1
		status := "ok"
		if change > *tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %-10s %12.2f -> %12.2f  (%+.1f%%)  %s\n",
			name, metric, oldV, newV, change*100, status)
	}
	if failed || allocFailed {
		os.Exit(1)
	}
}

// Prometheus text exposition for the router: the obarch_cluster_*
// family. Same conventions as obarchd's /metrics — counters and gauges
// rendered from atomic sources, histograms on the shared two-per-decade
// bucket ladder — so one dashboard speaks both tiers.
package main

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// promBounds is the fixed bucket ladder (seconds), matching obarchd's.
var promBounds = []float64{
	10e-6, 50e-6, 100e-6, 500e-6,
	1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
	1, 5, 10,
}

func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeCounter(b *strings.Builder, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

func writeHistogram(b *strings.Builder, name, help string, h stats.Histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, le := range promBounds {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", le), h.CumulativeLE(int64(le*1e9)))
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(b, "%s_sum %g\n", name, h.ApproxSumNS()/1e9)
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

// nodeCounter renders one per-node counter family, labelled by the
// node's obwire address.
func nodeCounter(b *strings.Builder, name, help string, rows []cluster.NodeStats, get func(cluster.NodeStats) uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, r := range rows {
		fmt.Fprintf(b, "%s{node=%q} %d\n", name, promEscape(r.BinAddr), get(r))
	}
}

// handleMetrics is GET /metrics: the cluster-level routing counters,
// per-node health and failover families, and the routed-send latency
// histogram.
func (s *routerServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.r.Stats()
	var b strings.Builder

	writeCounter(&b, "obarch_cluster_sends_total", "Sends routed by the front tier.", st.Sends)
	writeCounter(&b, "obarch_cluster_failovers_refusal_total", "Sends failed over after an in-band refusal (overload or shed).", st.FailoversRefusal)
	writeCounter(&b, "obarch_cluster_failovers_transport_total", "Sends failed over after a transport error.", st.FailoversTransport)
	writeCounter(&b, "obarch_cluster_exhausted_total", "Sends whose failover budget ran out; the last refusal went to the client.", st.Exhausted)
	writeCounter(&b, "obarch_cluster_no_backend_total", "Sends refused because no routable backend existed.", st.NoBackend)

	writeGauge(&b, "obarch_cluster_nodes", "Nodes in the membership.", float64(len(st.Nodes)))
	writeGauge(&b, "obarch_cluster_routable", "Nodes currently routable (healthy or suspect, not draining).", float64(st.Routable))
	quorum := 0.0
	if st.Quorum {
		quorum = 1
	}
	writeGauge(&b, "obarch_cluster_quorum", "1 while a majority of backends is routable.", quorum)
	ready := 0.0
	if st.Quorum && !s.draining.Load() {
		ready = 1
	}
	writeGauge(&b, "obarch_cluster_ready", "1 while /readyz answers 200.", ready)

	// Per-node health: the state as a labelled enum gauge (one series
	// per node per state, the active one 1), plus depth and counters.
	fmt.Fprintf(&b, "# HELP obarch_cluster_node_state Node health state (1 on the active series).\n# TYPE obarch_cluster_node_state gauge\n")
	for _, r := range st.Nodes {
		for _, state := range []string{"healthy", "suspect", "down", "probing"} {
			v := 0
			if r.State == state {
				v = 1
			}
			fmt.Fprintf(&b, "obarch_cluster_node_state{node=%q,state=%q} %d\n", promEscape(r.BinAddr), state, v)
		}
	}
	fmt.Fprintf(&b, "# HELP obarch_cluster_node_queue_depth Last polled backlog per node (queued + in flight).\n# TYPE obarch_cluster_node_queue_depth gauge\n")
	for _, r := range st.Nodes {
		fmt.Fprintf(&b, "obarch_cluster_node_queue_depth{node=%q} %d\n", promEscape(r.BinAddr), r.QueueDepth)
	}
	fmt.Fprintf(&b, "# HELP obarch_cluster_node_outstanding Router-side in-flight sends per node.\n# TYPE obarch_cluster_node_outstanding gauge\n")
	for _, r := range st.Nodes {
		fmt.Fprintf(&b, "obarch_cluster_node_outstanding{node=%q} %d\n", promEscape(r.BinAddr), r.Outstanding)
	}
	nodeCounter(&b, "obarch_cluster_node_forwards_total", "Send attempts dispatched to the node.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.Forwards })
	nodeCounter(&b, "obarch_cluster_node_completed_total", "Sends the node executed (success or machine error).", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.Completed })
	nodeCounter(&b, "obarch_cluster_node_rejected_total", "Sends the node refused at admission.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.Rejected })
	nodeCounter(&b, "obarch_cluster_node_shed_total", "Sends the node shed after queue expiry.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.Shed })
	nodeCounter(&b, "obarch_cluster_node_transport_errors_total", "Send attempts lost to connection errors.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.TransportErrs })
	nodeCounter(&b, "obarch_cluster_node_breaker_opens_total", "Circuit-breaker openings.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.BreakerOpens })
	nodeCounter(&b, "obarch_cluster_node_probes_total", "Half-open probes attempted.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.Probes })
	nodeCounter(&b, "obarch_cluster_node_recoveries_total", "Breaker closings via a successful probe.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.Recoveries })
	nodeCounter(&b, "obarch_cluster_node_poll_failures_total", "Health polls that failed or were refused.", st.Nodes,
		func(r cluster.NodeStats) uint64 { return r.PollFails })

	writeHistogram(&b, "obarch_cluster_send_seconds", "Whole routed send: candidate selection, obwire round trips, failovers.", s.sendLat.Snapshot())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

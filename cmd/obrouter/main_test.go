package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	obarch "repro"
	"repro/internal/cluster"
	"repro/internal/obwire"
	"repro/internal/serve"
)

// backend is one in-process obarchd stand-in: a pool on a doubling
// image, an obwire listener, and a minimal control plane (/readyz,
// /stats, /programs).
type backend struct {
	pool *serve.Pool
	srv  *obwire.Server
	web  *httptest.Server
}

func doubleSnapshot(t testing.TB) *obarch.Snapshot {
	t.Helper()
	sys := obarch.NewSystem(obarch.Options{})
	if err := sys.Load(`extend SmallInt [ method double [ ^self + self ] ]`); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func startBackend(t testing.TB, snap *obarch.Snapshot, cfg serve.Config) *backend {
	t.Helper()
	bk := &backend{pool: serve.NewPool(snap, cfg)}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bk.srv = obwire.Serve(l, bk.pool, obwire.Options{})
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"queue_depths":[0],"in_flight":0}`)
	})
	mux.HandleFunc("/programs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[{"name":"double","entry":"double"}]`)
	})
	bk.web = httptest.NewServer(mux)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		bk.srv.Shutdown(ctx)
		cancel()
		bk.pool.Close()
		bk.web.Close()
	})
	return bk
}

func (bk *backend) spec() cluster.NodeSpec {
	return cluster.NodeSpec{
		HTTPAddr: bk.web.Listener.Addr().String(),
		BinAddr:  bk.srv.Addr().String(),
	}
}

func startRouter(t testing.TB, backends ...*backend) (*cluster.Router, *httptest.Server) {
	t.Helper()
	cfg := cluster.Config{
		PollInterval:  25 * time.Millisecond,
		FailThreshold: 2,
		Cooldown:      100 * time.Millisecond,
		Vnodes:        16,
	}
	for _, bk := range backends {
		cfg.Nodes = append(cfg.Nodes, bk.spec())
	}
	r := cluster.New(cfg)
	web := httptest.NewServer(newRouterServer(r))
	t.Cleanup(func() {
		web.Close()
		r.Close()
	})
	return r, web
}

func postSend(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/send", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

// TestParseNodes pins the -nodes flag grammar.
func TestParseNodes(t *testing.T) {
	specs, err := parseNodes("a:1=b:2, c:3=d:4 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].HTTPAddr != "a:1" || specs[0].BinAddr != "b:2" || specs[1].HTTPAddr != "c:3" {
		t.Fatalf("parsed %+v", specs)
	}
	if _, err := parseNodes("justoneaddr"); err == nil {
		t.Fatal("missing = accepted")
	}
	if specs, err := parseNodes(""); err != nil || specs != nil {
		t.Fatalf("empty flag: %v %v", specs, err)
	}
}

// TestHTTPSendThroughRouter drives the whole front tier over HTTP: the
// single-node wire shape in, routed over obwire, the single-node wire
// shape out.
func TestHTTPSendThroughRouter(t *testing.T) {
	snap := doubleSnapshot(t)
	a := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	b := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	_, web := startRouter(t, a, b)

	resp, out := postSend(t, web.URL, `{"receiver": 21, "selector": "double"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["result"] != float64(42) {
		t.Fatalf("result = %v, want 42", out["result"])
	}
	if out["error"] != nil {
		t.Fatalf("unexpected error: %v", out["error"])
	}

	// Machine errors keep their 422 and are never failed over.
	resp, out = postSend(t, web.URL, `{"receiver": 21, "selector": "nosuch"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("machine error status %d, want 422 (%v)", resp.StatusCode, out)
	}

	// Bad requests are refused at the router, touching no backend.
	r2, err := http.Post(web.URL+"/send", "application/json", strings.NewReader(`{"selector":""}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty selector status %d, want 400", r2.StatusCode)
	}
}

// TestHTTPBatchThroughRouter routes an array body, elements landing
// wherever the balancer sends them, results in request order.
func TestHTTPBatchThroughRouter(t *testing.T) {
	snap := doubleSnapshot(t)
	a := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	b := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	_, web := startRouter(t, a, b)

	var body bytes.Buffer
	body.WriteString(`[`)
	for i := 0; i < 32; i++ {
		if i > 0 {
			body.WriteString(",")
		}
		fmt.Fprintf(&body, `{"receiver": %d, "selector": "double"}`, i)
	}
	body.WriteString(`]`)
	resp, err := http.Post(web.URL+"/batch", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 32 {
		t.Fatalf("%d results, want 32", len(out))
	}
	for i, r := range out {
		if r.Error != "" {
			t.Fatalf("batch[%d]: %s", i, r.Error)
		}
		if r.Result != float64(2*i) {
			t.Fatalf("batch[%d] = %v, want %d", i, r.Result, 2*i)
		}
	}
}

// TestRouterObservability exercises /stats, /metrics, /readyz,
// /healthz, and /programs: the obarchd-parity surface.
func TestRouterObservability(t *testing.T) {
	snap := doubleSnapshot(t)
	a := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	_, web := startRouter(t, a)

	for i := 0; i < 10; i++ {
		resp, out := postSend(t, web.URL, `{"receiver": 1, "selector": "double"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("send %d: %d %v", i, resp.StatusCode, out)
		}
	}

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	resp, body := get("/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	var st struct {
		Cluster cluster.Stats `json:"cluster"`
		Ready   bool          `json:"ready"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/stats decode: %v", err)
	}
	if st.Cluster.Sends != 10 || len(st.Cluster.Nodes) != 1 || !st.Ready {
		t.Fatalf("/stats cluster block: sends=%d nodes=%d ready=%v", st.Cluster.Sends, len(st.Cluster.Nodes), st.Ready)
	}
	if st.Cluster.Nodes[0].Completed != 10 {
		t.Fatalf("node completed = %d, want 10", st.Cluster.Nodes[0].Completed)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"obarch_cluster_sends_total 10",
		"obarch_cluster_quorum 1",
		"obarch_cluster_node_state{",
		"obarch_cluster_node_completed_total{",
		"obarch_cluster_send_seconds_count 10",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %d, want 200", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	resp, body = get("/programs")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "double") {
		t.Fatalf("/programs: %d %q", resp.StatusCode, body)
	}
}

// TestRouterReadyzQuorum pins the quorum answer: alive with a majority
// routable, 503 "no-quorum" once the majority is gone.
func TestRouterReadyzQuorum(t *testing.T) {
	snap := doubleSnapshot(t)
	a := startBackend(t, snap, serve.Config{Workers: 1, Timeout: 10 * time.Second})
	r, web := startRouter(t, a)

	// Kill the only backend; the poller opens its breaker.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	a.srv.Shutdown(ctx)
	cancel()
	a.web.CloseClientConnections()
	a.web.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(web.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 256)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(string(body[:n]), "no-quorum") {
				t.Fatalf("/readyz body %q, want no-quorum", body[:n])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after the only backend died")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ok, _, _ := r.Ready(); ok {
		t.Fatal("Router.Ready() still true")
	}
	// Sends now answer 503 + Retry-After: the no-backend refusal.
	resp, out := postSend(t, web.URL, `{"receiver": 1, "selector": "double"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("send with no backends: %d %v, want 503", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After on the no-backend refusal")
	}
}

// TestNodesJoinLeaveHTTP drives membership over the admin endpoints.
func TestNodesJoinLeaveHTTP(t *testing.T) {
	snap := doubleSnapshot(t)
	a := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	b := startBackend(t, snap, serve.Config{Workers: 2, Timeout: 10 * time.Second})
	r, web := startRouter(t, a)

	spec := b.spec()
	body := fmt.Sprintf(`{"http_addr": %q, "bin_addr": %q}`, spec.HTTPAddr, spec.BinAddr)
	resp, err := http.Post(web.URL+"/nodes/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d", resp.StatusCode)
	}
	if len(r.Nodes()) != 2 {
		t.Fatalf("membership %d after join, want 2", len(r.Nodes()))
	}
	// Duplicate join conflicts.
	resp, _ = http.Post(web.URL+"/nodes/join", "application/json", strings.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate join: %d, want 409", resp.StatusCode)
	}

	resp, err = http.Post(web.URL+"/nodes/leave", "application/json",
		strings.NewReader(fmt.Sprintf(`{"bin_addr": %q}`, spec.BinAddr)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d", resp.StatusCode)
	}
	if len(r.Nodes()) != 1 {
		t.Fatalf("membership %d after leave, want 1", len(r.Nodes()))
	}
	// Traffic still flows on the survivor.
	if resp, out := postSend(t, web.URL, `{"receiver": 3, "selector": "double"}`); resp.StatusCode != http.StatusOK || out["result"] != float64(6) {
		t.Fatalf("send after leave: %d %v", resp.StatusCode, out)
	}
}

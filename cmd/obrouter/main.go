// Command obrouter is the cluster front tier: one HTTP face over N
// obarchd nodes, speaking obwire to each over a small pool of
// persistent multiplexed connections. Clients keep the single-node
// wire shapes — POST /send and /batch bodies and responses are
// byte-compatible with obarchd's — and gain the cluster semantics:
//
//   - Affinity keys consistent-hash onto the node ring (vnode ring,
//     stable under membership change), so a key's quarantine history,
//     pinned worker, and cache warmth stay on one node. Keyless sends
//     join the shortest queue cluster-wide via power-of-two-choices
//     over each node's polled queue depths.
//   - Per-node health state machines (healthy → suspect → down →
//     half-open probe) fuse the slow signals — /readyz and /stats
//     polls — with the fast ones: transport errors and in-band
//     refusals on the data path. Sustained hard failures open a
//     per-node circuit breaker; after a cooldown, one half-open probe
//     (readyz + an obwire ping, so the data plane is proven too)
//     closes it again.
//   - Retryable outcomes — transport errors, admission refusals (429),
//     sheds (503) — fail over to the next candidate node within a
//     budget; machine errors (422) never do (the send executed).
//     A node killed mid-traffic costs its in-flight sends one failover
//     each, invisibly to well-behaved clients.
//   - Node join/leave (POST /nodes/join, /nodes/leave) reshapes the
//     ring without dropping in-flight work.
//
// Endpoints:
//
//	POST /send         single-node wire shape; routed by key or JSQ,
//	                   failed over on retryable refusals; 502 when the
//	                   send died on the wire with the budget spent,
//	                   503 + Retry-After when no routable backend exists
//	POST /batch        the array form, routed per-element concurrently
//	POST /nodes/join   {"http_addr": "...", "bin_addr": "..."} — add a
//	                   node; it starts receiving traffic when it polls
//	                   ready
//	POST /nodes/leave  {"bin_addr": "..."} — remove a node; in-flight
//	                   sends finish, new sends stop immediately
//	GET  /programs     proxied from the first routable node
//	GET  /stats        router identity plus the cluster block: per-node
//	                   health/breaker/failover counters, routable count,
//	                   quorum
//	GET  /metrics      Prometheus text exposition (obarch_cluster_*)
//	GET  /healthz      liveness: 200 while the process serves HTTP
//	GET  /readyz       readiness: 200 while a majority of backends is
//	                   routable; 503 "no-quorum" when the cluster has
//	                   lost its majority, "draining" during shutdown
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/word"
)

func main() {
	addr := flag.String("addr", ":8374", "listen address")
	nodes := flag.String("nodes", "", "backend nodes as HTTPADDR=BINADDR,... (e.g. 127.0.0.1:8373=127.0.0.1:9373)")
	conns := flag.Int("conns", 2, "obwire connections per node")
	poll := flag.Duration("poll", 500*time.Millisecond, "health/depth poll interval per node")
	failThreshold := flag.Int("failthreshold", 3, "consecutive hard failures that open a node's breaker")
	cooldown := flag.Duration("cooldown", 2*time.Second, "breaker-open time before the half-open probe")
	budget := flag.Int("failover-budget", 0, "max routing attempts per send (0: node count)")
	vnodes := flag.Int("vnodes", 64, "consistent-hash points per node")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Parse()

	specs, err := parseNodes(*nodes)
	if err != nil {
		log.Fatalf("obrouter: -nodes: %v", err)
	}
	if len(specs) == 0 {
		log.Fatalf("obrouter: -nodes is required (HTTPADDR=BINADDR,...)")
	}

	r := cluster.New(cluster.Config{
		Nodes:          specs,
		ConnsPerNode:   *conns,
		PollInterval:   *poll,
		FailThreshold:  *failThreshold,
		Cooldown:       *cooldown,
		FailoverBudget: *budget,
		Vnodes:         *vnodes,
		Logf:           log.Printf,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("obrouter: %v", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	h := newRouterServer(r)
	srv := &http.Server{Handler: h}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			log.Fatalf("obrouter: %v", err)
		}
	}()
	log.Printf("obrouter: serving on %s over %d nodes", l.Addr(), len(specs))

	<-sig
	log.Printf("obrouter: draining (budget %v)", *drain)
	h.draining.Store(true) // /readyz flips first so balancers stop routing here
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("obrouter: drain: %v", err)
	}
	r.Close()
	log.Printf("obrouter: stopped")
}

// parseNodes parses the -nodes flag: comma-separated HTTPADDR=BINADDR
// pairs.
func parseNodes(s string) ([]cluster.NodeSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []cluster.NodeSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		httpAddr, binAddr, ok := strings.Cut(part, "=")
		if !ok || httpAddr == "" || binAddr == "" {
			return nil, fmt.Errorf("node %q: want HTTPADDR=BINADDR", part)
		}
		specs = append(specs, cluster.NodeSpec{HTTPAddr: httpAddr, BinAddr: binAddr})
	}
	return specs, nil
}

// sendRequest mirrors obarchd's wire form of one message send, so a
// client pointed at the router instead of a node changes nothing.
type sendRequest struct {
	Receiver  json.Number   `json:"receiver"`
	Selector  string        `json:"selector"`
	Args      []json.Number `json:"args,omitempty"`
	Key       uint64        `json:"key,omitempty"`
	MaxSteps  uint64        `json:"max_steps,omitempty"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
}

// sendResponse mirrors obarchd's result wire form.
type sendResponse struct {
	Result    any    `json:"result"`
	Error     string `json:"error,omitempty"`
	Worker    int    `json:"worker"`
	Steps     uint64 `json:"steps"`
	Cycles    uint64 `json:"cycles"`
	LatencyUS int64  `json:"latency_us"`
}

// routerServer is the HTTP face of a cluster.Router, split from main so
// tests drive it through httptest.
type routerServer struct {
	r        *cluster.Router
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool
	sendLat  stats.ConcurrentHistogram
	proxy    *http.Client
}

func newRouterServer(r *cluster.Router) *routerServer {
	s := &routerServer{
		r:     r,
		mux:   http.NewServeMux(),
		start: time.Now(),
		proxy: &http.Client{Timeout: 5 * time.Second},
	}
	s.mux.HandleFunc("POST /send", s.handleSend)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /nodes/join", s.handleJoin)
	s.mux.HandleFunc("POST /nodes/leave", s.handleLeave)
	s.mux.HandleFunc("GET /programs", s.handlePrograms)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

func (s *routerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleReady is the router's readiness: draining during shutdown,
// no-quorum when a majority of backends is unroutable — both 503, so a
// balancer in front of several routers steers around this one.
func (s *routerServer) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if ok, routable, total := s.r.Ready(); !ok {
		http.Error(w, fmt.Sprintf("no-quorum (%d/%d routable)", routable, total), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// wordOf mirrors obarchd's JSON-number-to-machine-word conversion.
func wordOf(n json.Number) (word.Word, error) {
	if strings.ContainsAny(n.String(), ".eE") {
		f, err := n.Float64()
		if err != nil {
			return word.Word{}, fmt.Errorf("bad number %q", n.String())
		}
		return word.FromFloat(float32(f)), nil
	}
	i, err := n.Int64()
	if err != nil {
		return word.Word{}, fmt.Errorf("integer %q outside the 32-bit machine word", n.String())
	}
	if int64(int32(i)) != i {
		return word.Word{}, fmt.Errorf("integer %d outside the 32-bit machine word", i)
	}
	return word.FromInt(int32(i)), nil
}

// jsonOf mirrors obarchd's machine-word-to-JSON conversion.
func jsonOf(v word.Word) any {
	if i, ok := v.IntOK(); ok {
		return i
	}
	if f, ok := v.FloatOK(); ok {
		return f
	}
	switch v {
	case word.True:
		return true
	case word.False:
		return false
	case word.Nil:
		return nil
	}
	return v.String()
}

// toRequest converts one wire send into a pool request.
func toRequest(req sendRequest) (serve.Request, error) {
	if req.Selector == "" {
		return serve.Request{}, fmt.Errorf("missing selector")
	}
	recv, err := wordOf(req.Receiver)
	if err != nil {
		return serve.Request{}, err
	}
	out := serve.Request{
		Receiver: recv,
		Selector: req.Selector,
		Key:      req.Key,
		MaxSteps: req.MaxSteps,
	}
	if req.TimeoutMS > 0 {
		out.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if len(req.Args) > 0 {
		out.Args = make([]word.Word, len(req.Args))
		for i, a := range req.Args {
			if out.Args[i], err = wordOf(a); err != nil {
				return serve.Request{}, err
			}
		}
	}
	return out, nil
}

// httpStatus maps one routed outcome to its HTTP answer, preserving the
// single-node status taxonomy: frame statuses map exactly as obarchd's
// statusFor maps pool errors, ErrNoBackends and exhausted transport
// errors become the cluster-level refusals.
func httpStatus(resp obwire.Response, err error) int {
	switch {
	case errors.Is(err, cluster.ErrNoBackends):
		return http.StatusServiceUnavailable
	case err != nil:
		return http.StatusBadGateway
	}
	switch resp.Status {
	case obwire.StatusOK:
		return http.StatusOK
	case obwire.StatusOverloaded:
		return http.StatusTooManyRequests
	case obwire.StatusShed:
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// toResponse converts a routed outcome to the wire result.
func toResponse(resp obwire.Response, err error) sendResponse {
	if err != nil {
		return sendResponse{Error: err.Error()}
	}
	out := sendResponse{
		Error:     resp.Err,
		Worker:    int(resp.Worker),
		Steps:     resp.Steps,
		Cycles:    resp.Cycles,
		LatencyUS: resp.Latency.Microseconds(),
	}
	if resp.OK() {
		out.Result = jsonOf(resp.Value)
	}
	return out
}

// route sends one request through the cluster and writes the HTTP
// answer.
func (s *routerServer) route(w http.ResponseWriter, req serve.Request) {
	t0 := time.Now()
	resp, err := s.r.Send(req)
	s.sendLat.Observe(time.Since(t0))
	status := httpStatus(resp, err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// Same contract as a single node: transient by construction, so
		// tell the client when to come back.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, toResponse(resp, err))
}

func (s *routerServer) handleSend(w http.ResponseWriter, r *http.Request) {
	var req sendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
		return
	}
	poolReq, err := toRequest(req)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	s.route(w, poolReq)
}

// handleBatch routes each element of the array concurrently — elements
// may land on different nodes — and answers the result array in request
// order, per-element failures inline, matching the single-node shape.
func (s *routerServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []sendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.UseNumber()
	if err := dec.Decode(&reqs); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, "bad request: "+err.Error()), http.StatusBadRequest)
		return
	}
	out := make([]sendResponse, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		poolReq, err := toRequest(reqs[i])
		if err != nil {
			out[i] = sendResponse{Error: err.Error()}
			continue
		}
		wg.Add(1)
		go func(i int, req serve.Request) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := s.r.Send(req)
			s.sendLat.Observe(time.Since(t0))
			out[i] = toResponse(resp, err)
		}(i, poolReq)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

func (s *routerServer) handleJoin(w http.ResponseWriter, r *http.Request) {
	var spec struct {
		HTTPAddr string `json:"http_addr"`
		BinAddr  string `json:"bin_addr"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	if spec.HTTPAddr == "" || spec.BinAddr == "" {
		http.Error(w, `{"error":"http_addr and bin_addr are required"}`, http.StatusBadRequest)
		return
	}
	if err := s.r.Join(cluster.NodeSpec{HTTPAddr: spec.HTTPAddr, BinAddr: spec.BinAddr}); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"joined": spec.BinAddr, "nodes": len(s.r.Nodes())})
}

func (s *routerServer) handleLeave(w http.ResponseWriter, r *http.Request) {
	var spec struct {
		BinAddr string `json:"bin_addr"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	if err := s.r.Leave(spec.BinAddr); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"left": spec.BinAddr, "nodes": len(s.r.Nodes())})
}

// handlePrograms proxies the workload listing from the first routable
// node — every node serves the same image, so any answer is the
// cluster's answer.
func (s *routerServer) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	for _, n := range s.r.Nodes() {
		if !n.Routable() {
			continue
		}
		resp, err := s.proxy.Get("http://" + n.HTTPAddr + "/programs")
		if err != nil {
			continue
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	http.Error(w, `{"error":"no routable backends"}`, http.StatusServiceUnavailable)
}

func (s *routerServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	ok, routable, total := s.r.Ready()
	writeJSON(w, http.StatusOK, map[string]any{
		"cluster":    s.r.Stats(),
		"ready":      ok && !s.draining.Load(),
		"routable":   routable,
		"nodes":      total,
		"send_us":    percentiles(s.sendLat.Snapshot()),
		"start_time": s.start.UTC().Format(time.RFC3339Nano),
		"uptime_s":   time.Since(s.start).Seconds(),
	})
}

func percentiles(h stats.Histogram) map[string]any {
	return map[string]any{
		"count": h.Count(),
		"p50":   h.Quantile(0.50).Microseconds(),
		"p90":   h.Quantile(0.90).Microseconds(),
		"p99":   h.Quantile(0.99).Microseconds(),
		"p999":  h.Quantile(0.999).Microseconds(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("obrouter: write response: %v", err)
	}
}

package main

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/word"
)

// BenchmarkRouterSend prices the front tier's routing layer: one send
// through candidate selection, the node's mux connection, and the
// backend's whole obwire loop. depth=1 is the sequential round-trip
// (routing overhead atop BinarySend/depth=1); pipelined drives the
// router from parallel callers, which is how concurrent client traffic
// naturally pipelines onto the per-node mux connections.
func BenchmarkRouterSend(b *testing.B) {
	snap := doubleSnapshot(b)
	run := func(b *testing.B, parallel bool) {
		bk := startBackend(b, snap, serve.Config{Workers: 2, GCEvery: -1, Timeout: 10 * time.Second})
		r := cluster.New(cluster.Config{
			Nodes:        []cluster.NodeSpec{bk.spec()},
			PollInterval: time.Second,
		})
		defer r.Close()
		req := serve.Request{Receiver: word.FromInt(21), Selector: "double"}
		// One warm round trip dials the mux connection and populates the
		// server-side selector cache.
		if resp, err := r.Send(req); err != nil || !resp.OK() {
			b.Fatalf("warm send: %v %v", resp, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if !parallel {
			for i := 0; i < b.N; i++ {
				resp, err := r.Send(req)
				if err != nil || !resp.OK() {
					b.Fatalf("send: %v %v", resp, err)
				}
			}
			return
		}
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				resp, err := r.Send(req)
				if err != nil || !resp.OK() {
					b.Fatalf("send: %v %v", resp, err)
				}
			}
		})
	}
	b.Run("depth=1", func(b *testing.B) { run(b, false) })
	b.Run("pipelined", func(b *testing.B) { run(b, true) })
}

// Refusal round-trip coverage for the binary transport: frame statuses
// coming back over obwire must land in the same retry/pushback counters
// the HTTP path feeds, in both client shapes — synchronous sends driven
// through the retryer, and pipelined sends counted in-band.
package main

import (
	"context"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/smalltalk"
)

// startObwire boots a pool over a one-method image (answer = self + 1)
// behind an obwire listener and returns the listener's address.
func startObwire(t *testing.T, cfg serve.Config) string {
	t.Helper()
	m := core.New(core.Config{})
	c, err := smalltalk.Compile(`
extend SmallInt [
	method answer [ ^self + 1 ]
]`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := smalltalk.LoadCOM(m, c); err != nil {
		t.Fatalf("load: %v", err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	pool := serve.NewPool(snap, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := obwire.Serve(l, pool, obwire.Options{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		pool.Close()
	})
	return l.Addr().String()
}

// binCounters is one test run's worth of the shared counters main wires
// into every client goroutine.
type binCounters struct {
	sent, posts, failed, keyed atomic.Int64
	refusals                   refusalCounters
	recorded                   atomic.Int64
}

func testBinRun(addr string, pipeline, rounds, retries int, c *binCounters) binRun {
	rng := rand.New(rand.NewPCG(1, 2))
	return binRun{
		id:       0,
		addr:     addr,
		pipeline: pipeline,
		rounds:   rounds,
		programs: []program{{Name: "answer", Entry: "answer", Size: 5, Warm: 5, Check: 6}},
		rng:      rng,
		rt:       &retryer{max: retries, base: time.Microsecond, rng: rng, c: &c.refusals, posts: &c.posts},
		record:   func(time.Duration) { c.recorded.Add(1) },
		sent:     &c.sent, posts: &c.posts, failed: &c.failed, keyed: &c.keyed,
		refusals: &c.refusals,
	}
}

// TestBinaryRunPipelined is the happy path: a pipelined run validates
// every checksum, counts every frame, and records every latency, with
// the pushback counters untouched.
func TestBinaryRunPipelined(t *testing.T) {
	addr := startObwire(t, serve.Config{Workers: 1, Timeout: 10 * time.Second})
	var c binCounters
	testBinRun(addr, 3, 8, 0, &c).run()

	if got := c.sent.Load(); got != 8 {
		t.Errorf("sent %d, want 8", got)
	}
	if got := c.posts.Load(); got != 8 {
		t.Errorf("frames %d, want 8", got)
	}
	if got := c.failed.Load(); got != 0 {
		t.Errorf("failed %d, want 0", got)
	}
	if got := c.recorded.Load(); got != 8 {
		t.Errorf("recorded %d latencies, want 8", got)
	}
	if v := c.refusals.rejected.Load() + c.refusals.shed.Load() + c.refusals.transport.Load() + c.refusals.retries.Load(); v != 0 {
		t.Errorf("pushback counters moved on a clean run: %+v", &c.refusals)
	}
}

// TestBinaryOverloadRetryPath drives a depth-1 send against closed
// admission: every StatusOverloaded frame must land in the rejected
// counter and burn a retry, exactly as a 429 does over HTTP.
func TestBinaryOverloadRetryPath(t *testing.T) {
	addr := startObwire(t, serve.Config{Workers: 1, MaxInFlight: -1, Timeout: 10 * time.Second})
	var c binCounters
	testBinRun(addr, 1, 1, 2, &c).run()

	if got := c.refusals.rejected.Load(); got != 3 {
		t.Errorf("rejected %d, want 3 (first attempt + 2 retries)", got)
	}
	if got := c.refusals.retries.Load(); got != 2 {
		t.Errorf("retries %d, want 2", got)
	}
	if got := c.posts.Load(); got != 3 {
		t.Errorf("frames %d, want 3", got)
	}
	if got, want := c.sent.Load(), int64(1); got != want {
		t.Errorf("sent %d, want %d", got, want)
	}
	if got := c.failed.Load(); got != 1 {
		t.Errorf("failed %d, want 1 (budget exhausted)", got)
	}
	if got := c.refusals.shed.Load() + c.refusals.transport.Load(); got != 0 {
		t.Errorf("refusals misclassified: shed+transport = %d, want 0", got)
	}
}

// TestBinaryOverloadPipelined drives a pipelined window against closed
// admission: refusals arrive in-band, are classified by frame status,
// and are never retried — the batch-mode contract on the binary wire.
func TestBinaryOverloadPipelined(t *testing.T) {
	addr := startObwire(t, serve.Config{Workers: 1, MaxInFlight: -1, Timeout: 10 * time.Second})
	var c binCounters
	testBinRun(addr, 4, 6, 3, &c).run()

	if got := c.sent.Load(); got != 6 {
		t.Errorf("sent %d, want 6", got)
	}
	if got := c.refusals.rejected.Load(); got != 6 {
		t.Errorf("rejected %d, want 6 (every send refused in-band)", got)
	}
	if got := c.refusals.retries.Load(); got != 0 {
		t.Errorf("retries %d, want 0 (pipelined refusals are not retried)", got)
	}
	if got := c.failed.Load(); got != 6 {
		t.Errorf("failed %d, want 6", got)
	}
}

// TestBinClientRedialBackoff pins the reconnect pacing: the first dial
// goes straight out, every attempt after a failure waits out the capped
// exponential ladder first, and one success resets the schedule — so a
// client facing a restarting server never spins a tight connect loop.
func TestBinClientRedialBackoff(t *testing.T) {
	var dials, sleeps int
	var slept []time.Duration
	alive := false
	bc := &binClient{
		addr: "test",
		dial: func(string) (*obwire.Client, error) {
			dials++
			if !alive {
				return nil, context.DeadlineExceeded
			}
			return nil, nil // nil client is fine: ensure only stores it
		},
		delay: func(fails int) time.Duration {
			d := time.Millisecond << (fails - 1)
			if d > 10*time.Millisecond {
				d = 10 * time.Millisecond
			}
			return d
		},
		sleep: func(d time.Duration) { sleeps++; slept = append(slept, d) },
	}

	// First dial: immediate, no sleep.
	if err := bc.ensure(); err == nil {
		t.Fatal("dial against a dead server succeeded")
	}
	if dials != 1 || sleeps != 0 {
		t.Fatalf("first attempt: dials=%d sleeps=%d, want 1/0", dials, sleeps)
	}
	// Failures 2..5: each waits the ladder first, doubling then capping.
	for i := 0; i < 4; i++ {
		bc.ensure()
	}
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond}
	if len(slept) != 4 {
		t.Fatalf("slept %d times, want 4", len(slept))
	}
	for i, d := range want {
		if slept[i] != d {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], d)
		}
	}
	// Recovery: one successful dial resets the ladder...
	alive = true
	if err := bc.ensure(); err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	if bc.fails != 0 {
		t.Fatalf("fails = %d after success, want 0", bc.fails)
	}
	// ...so the next failure starts from an immediate dial again.
	alive, bc.c = false, nil
	sleeps = 0
	bc.ensure()
	if sleeps != 0 {
		t.Fatal("first dial after a success slept; ladder was not reset")
	}
}

// TestBinClientSharesRetryerLadder pins that the production wiring
// paces redials off the retryer's own backoffDelay — one schedule for
// refused sends and dead connections alike.
func TestBinClientSharesRetryerLadder(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	rt := &retryer{max: 0, base: 8 * time.Millisecond, rng: rng, c: &refusalCounters{}, posts: &atomic.Int64{}}
	bc := newBinClient("127.0.0.1:1", rt)
	for fails := 1; fails <= 12; fails++ {
		ceil := 8 * time.Millisecond << (fails - 1)
		if ceil > time.Second || ceil <= 0 {
			ceil = time.Second
		}
		for i := 0; i < 50; i++ {
			if d := bc.delay(fails); d <= 0 || d > ceil {
				t.Fatalf("fails=%d: delay %v outside (0, %v]", fails, d, ceil)
			}
		}
	}
}

// TestClassifyStatus pins the frame-status half of the classification
// contract: overload and shed count by kind, everything else is a real
// failure and stays unclassified.
func TestClassifyStatus(t *testing.T) {
	var c refusalCounters
	c.classifyStatus(obwire.StatusOverloaded)
	c.classifyStatus(obwire.StatusShed)
	c.classifyStatus(obwire.StatusShed)
	c.classifyStatus(obwire.StatusMachineError)
	c.classifyStatus(obwire.StatusOK)
	if got := c.rejected.Load(); got != 1 {
		t.Errorf("rejected %d, want 1", got)
	}
	if got := c.shed.Load(); got != 2 {
		t.Errorf("shed %d, want 2", got)
	}
	if got := c.transport.Load() + c.retries.Load(); got != 0 {
		t.Errorf("transport+retries = %d, want 0", got)
	}
}

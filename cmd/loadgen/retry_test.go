package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"math/rand/v2"
)

func newRetryer(max int, base time.Duration) (*retryer, *refusalCounters, *atomic.Int64) {
	c := &refusalCounters{}
	posts := &atomic.Int64{}
	rng := rand.New(rand.NewPCG(1, 2))
	return &retryer{max: max, base: base, rng: rng, c: c, posts: posts}, c, posts
}

// TestBackoffDelay pins the full-jitter envelope: every delay is drawn
// from (0, base<<attempt], the ceiling doubles per attempt, and the
// whole ladder caps at one second no matter how deep the retry goes.
func TestBackoffDelay(t *testing.T) {
	rt, _, _ := newRetryer(10, 10*time.Millisecond)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 10 * time.Millisecond << attempt
		if ceil > time.Second {
			ceil = time.Second
		}
		for i := 0; i < 200; i++ {
			d := rt.backoffDelay(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
	// A base so large the shift overflows must still cap, not wedge.
	rt.base = time.Duration(1) << 60
	if d := rt.backoffDelay(5); d <= 0 || d > time.Second {
		t.Fatalf("overflowing base: delay %v outside (0, 1s]", d)
	}
}

// TestRetrySendEventuallySucceeds: a server that refuses twice with 429
// then serves must cost exactly three posts, two counted rejections, two
// retries — and hand back the real result with no error.
func TestRetrySendEventuallySucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"result":null,"error":"serve: pool overloaded","worker":0}`)
			return
		}
		fmt.Fprintln(w, `{"result":42,"error":"","worker":0}`)
	}))
	defer ts.Close()

	rt, c, posts := newRetryer(3, time.Microsecond)
	got, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"})
	if err != nil {
		t.Fatalf("retried send failed: %v", err)
	}
	if got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
	if posts.Load() != 3 || c.rejected.Load() != 2 || c.retries.Load() != 2 {
		t.Errorf("posts/rejected/retries = %d/%d/%d, want 3/2/2",
			posts.Load(), c.rejected.Load(), c.retries.Load())
	}
	if c.shed.Load() != 0 || c.transport.Load() != 0 {
		t.Errorf("shed/transport = %d/%d, want 0/0", c.shed.Load(), c.transport.Load())
	}
}

// TestRetrySendBudgetExhausted: a server that always sheds (503) burns
// the whole budget — max retries plus the first attempt — and the last
// refusal surfaces as the error.
func TestRetrySendBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"result":null,"error":"serve: deadline expired before dispatch","worker":0}`)
	}))
	defer ts.Close()

	rt, c, posts := newRetryer(2, time.Microsecond)
	if _, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"}); err == nil {
		t.Fatal("exhausted retries answered no error")
	}
	if posts.Load() != 3 || c.shed.Load() != 3 || c.retries.Load() != 2 {
		t.Errorf("posts/shed/retries = %d/%d/%d, want 3/3/2",
			posts.Load(), c.shed.Load(), c.retries.Load())
	}
}

// TestRetrySendMachineErrorNotRetried: a 422 is the machine's final
// answer — one post, no retries, no refusal counts.
func TestRetrySendMachineErrorNotRetried(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprintln(w, `{"result":null,"error":"doesNotUnderstand: quadruple","worker":0}`)
	}))
	defer ts.Close()

	rt, c, posts := newRetryer(3, time.Microsecond)
	if _, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"}); err == nil {
		t.Fatal("machine error answered no error")
	}
	if posts.Load() != 1 || c.retries.Load() != 0 || c.rejected.Load() != 0 || c.shed.Load() != 0 {
		t.Errorf("posts/retries/rejected/shed = %d/%d/%d/%d, want 1/0/0/0",
			posts.Load(), c.retries.Load(), c.rejected.Load(), c.shed.Load())
	}
}

// TestRetrySendTransport: a dead endpoint counts transport failures and
// retries them — the node might be mid-restart.
func TestRetrySendTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // the URL now refuses connections

	rt, c, posts := newRetryer(1, time.Microsecond)
	if _, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"}); err == nil {
		t.Fatal("dead endpoint answered no error")
	}
	if posts.Load() != 2 || c.transport.Load() != 2 || c.retries.Load() != 1 {
		t.Errorf("posts/transport/retries = %d/%d/%d, want 2/2/1",
			posts.Load(), c.transport.Load(), c.retries.Load())
	}
}

// TestClassifyBatchErrors pins the in-band batch refusal classification.
func TestClassifyBatchErrors(t *testing.T) {
	c := &refusalCounters{}
	c.classify("serve: pool overloaded")
	c.classify("serve: deadline expired before dispatch")
	c.classify("doesNotUnderstand: quadruple")
	if c.rejected.Load() != 1 || c.shed.Load() != 1 || c.transport.Load() != 0 {
		t.Errorf("rejected/shed/transport = %d/%d/%d, want 1/1/0",
			c.rejected.Load(), c.shed.Load(), c.transport.Load())
	}
}

package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"math/rand/v2"
)

func newRetryer(max int, base time.Duration) (*retryer, *refusalCounters, *atomic.Int64) {
	c := &refusalCounters{}
	posts := &atomic.Int64{}
	rng := rand.New(rand.NewPCG(1, 2))
	return &retryer{max: max, base: base, rng: rng, c: c, posts: posts}, c, posts
}

// TestBackoffDelay pins the full-jitter envelope: every delay is drawn
// from (0, base<<attempt], the ceiling doubles per attempt, and the
// whole ladder caps at one second no matter how deep the retry goes.
func TestBackoffDelay(t *testing.T) {
	rt, _, _ := newRetryer(10, 10*time.Millisecond)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 10 * time.Millisecond << attempt
		if ceil > time.Second {
			ceil = time.Second
		}
		for i := 0; i < 200; i++ {
			d := rt.backoffDelay(attempt, 0)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
	// A base so large the shift overflows must still cap, not wedge.
	rt.base = time.Duration(1) << 60
	if d := rt.backoffDelay(5, 0); d <= 0 || d > time.Second {
		t.Fatalf("overflowing base: delay %v outside (0, 1s]", d)
	}
}

// TestBackoffDelayRetryAfterFloor pins the server-suggested floor: a
// jittered delay never undercuts the Retry-After the server named, and
// a hostile floor is bounded by maxRetryAfter rather than honored.
func TestBackoffDelayRetryAfterFloor(t *testing.T) {
	rt, _, _ := newRetryer(10, time.Microsecond)
	for i := 0; i < 200; i++ {
		if d := rt.backoffDelay(0, 50*time.Millisecond); d < 50*time.Millisecond {
			t.Fatalf("delay %v undercut the 50ms Retry-After floor", d)
		}
	}
	// A floor below the jittered draw must not drag the delay down.
	rt.base = 400 * time.Millisecond
	saw := false
	for i := 0; i < 200; i++ {
		if d := rt.backoffDelay(1, time.Millisecond); d > time.Millisecond {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("a 1ms floor clamped every delay down to it")
	}
	if d := rt.backoffDelay(0, time.Hour); d > maxRetryAfter {
		t.Fatalf("hostile Retry-After honored beyond the %v cap: %v", maxRetryAfter, d)
	}
}

// TestRetryAfterHeader pins the header parse: delta-seconds in, 0 for
// absent, garbage, negative, or the HTTP-date form.
func TestRetryAfterHeader(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	}
	for _, c := range cases {
		if got := retryAfter(mk(c.in)); got != c.want {
			t.Errorf("retryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestSendSurfacesRetryAfter pins that the HTTP attempt hands the
// header through to the retry loop as its floor.
func TestSendSurfacesRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"result":null,"error":"serve: pool overloaded","worker":0}`)
	}))
	defer ts.Close()
	_, status, floor, err := send(ts.URL, sendRequest{Receiver: 1, Selector: "x"})
	if err == nil || status != http.StatusTooManyRequests {
		t.Fatalf("refusal: status=%d err=%v", status, err)
	}
	if floor != time.Second {
		t.Fatalf("floor = %v, want 1s from the Retry-After header", floor)
	}
}

// TestRetrySendEventuallySucceeds: a server that refuses twice with 429
// then serves must cost exactly three posts, two counted rejections, two
// retries — and hand back the real result with no error.
func TestRetrySendEventuallySucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			// No Retry-After here: with the header honored as a backoff
			// floor, setting it would make this test sleep for real.
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"result":null,"error":"serve: pool overloaded","worker":0}`)
			return
		}
		fmt.Fprintln(w, `{"result":42,"error":"","worker":0}`)
	}))
	defer ts.Close()

	rt, c, posts := newRetryer(3, time.Microsecond)
	got, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"})
	if err != nil {
		t.Fatalf("retried send failed: %v", err)
	}
	if got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
	if posts.Load() != 3 || c.rejected.Load() != 2 || c.retries.Load() != 2 {
		t.Errorf("posts/rejected/retries = %d/%d/%d, want 3/2/2",
			posts.Load(), c.rejected.Load(), c.retries.Load())
	}
	if c.shed.Load() != 0 || c.transport.Load() != 0 {
		t.Errorf("shed/transport = %d/%d, want 0/0", c.shed.Load(), c.transport.Load())
	}
}

// TestRetrySendBudgetExhausted: a server that always sheds (503) burns
// the whole budget — max retries plus the first attempt — and the last
// refusal surfaces as the error.
func TestRetrySendBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// No Retry-After: honored as a floor, it would slow this test.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"result":null,"error":"serve: deadline expired before dispatch","worker":0}`)
	}))
	defer ts.Close()

	rt, c, posts := newRetryer(2, time.Microsecond)
	if _, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"}); err == nil {
		t.Fatal("exhausted retries answered no error")
	}
	if posts.Load() != 3 || c.shed.Load() != 3 || c.retries.Load() != 2 {
		t.Errorf("posts/shed/retries = %d/%d/%d, want 3/3/2",
			posts.Load(), c.shed.Load(), c.retries.Load())
	}
}

// TestRetrySendMachineErrorNotRetried: a 422 is the machine's final
// answer — one post, no retries, no refusal counts.
func TestRetrySendMachineErrorNotRetried(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprintln(w, `{"result":null,"error":"doesNotUnderstand: quadruple","worker":0}`)
	}))
	defer ts.Close()

	rt, c, posts := newRetryer(3, time.Microsecond)
	if _, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"}); err == nil {
		t.Fatal("machine error answered no error")
	}
	if posts.Load() != 1 || c.retries.Load() != 0 || c.rejected.Load() != 0 || c.shed.Load() != 0 {
		t.Errorf("posts/retries/rejected/shed = %d/%d/%d/%d, want 1/0/0/0",
			posts.Load(), c.retries.Load(), c.rejected.Load(), c.shed.Load())
	}
}

// TestRetrySendTransport: a dead endpoint counts transport failures and
// retries them — the node might be mid-restart.
func TestRetrySendTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // the URL now refuses connections

	rt, c, posts := newRetryer(1, time.Microsecond)
	if _, err := rt.send(ts.URL, sendRequest{Receiver: 1, Selector: "x"}); err == nil {
		t.Fatal("dead endpoint answered no error")
	}
	if posts.Load() != 2 || c.transport.Load() != 2 || c.retries.Load() != 1 {
		t.Errorf("posts/transport/retries = %d/%d/%d, want 2/2/1",
			posts.Load(), c.transport.Load(), c.retries.Load())
	}
}

// TestClassifyBatchErrors pins the in-band batch refusal classification.
func TestClassifyBatchErrors(t *testing.T) {
	c := &refusalCounters{}
	c.classify("serve: pool overloaded")
	c.classify("serve: deadline expired before dispatch")
	c.classify("doesNotUnderstand: quadruple")
	if c.rejected.Load() != 1 || c.shed.Load() != 1 || c.transport.Load() != 0 {
		t.Errorf("rejected/shed/transport = %d/%d/%d, want 1/1/0",
			c.rejected.Load(), c.shed.Load(), c.transport.Load())
	}
}

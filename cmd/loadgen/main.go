// Command loadgen replays the workload suite against a running obarchd as
// concurrent HTTP traffic, validates every checksum, and reports
// throughput and latency.
//
//	obarchd -addr :8373 &
//	loadgen -addr http://localhost:8373 -clients 8 -rounds 4
//	loadgen -addr http://localhost:8373 -clients 8 -rounds 4 -batch 16
//
// With -batch K each client groups K sends into one POST /batch request,
// driving the pool's sharded DoAll fast path; the summary then reports
// sends/s alongside request throughput so batched and unbatched runs
// compare directly. The program list (entry selectors, measured sizes,
// expected checksums) is fetched from the server's /programs endpoint, so
// loadgen also works against a server that loaded custom sources.
//
// With -save, loadgen finishes a run by POSTing /save, asking the server
// to persist its machine image to the path it was started with (-image),
// so a load test doubles as the write path of a warm-restart drill.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type program struct {
	Name  string `json:"name"`
	Entry string `json:"entry"`
	Size  int32  `json:"size"`
	Warm  int32  `json:"warm"`
	Check int32  `json:"check"`
}

type sendRequest struct {
	Receiver int32  `json:"receiver"`
	Selector string `json:"selector"`
}

type sendResponse struct {
	Result any    `json:"result"`
	Error  string `json:"error"`
	Worker int    `json:"worker"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8373", "obarchd base URL")
	clients := flag.Int("clients", 8, "concurrent clients")
	rounds := flag.Int("rounds", 2, "suite replays per client")
	name := flag.String("program", "", "restrict to one program by name")
	warm := flag.Bool("warm", false, "use warmup sizes instead of measured sizes (no checksum validation)")
	batch := flag.Int("batch", 1, "sends per POST /batch request (1: one POST /send per send)")
	save := flag.Bool("save", false, "POST /save after the run, persisting the server's machine image")
	flag.Parse()

	programs, err := fetchPrograms(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *name != "" {
		kept := programs[:0]
		for _, p := range programs {
			if p.Name == *name {
				kept = append(kept, p)
			}
		}
		programs = kept
	}
	if len(programs) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no programs to run")
		os.Exit(1)
	}
	if *batch < 1 {
		*batch = 1
	}

	var (
		wg        sync.WaitGroup
		sent      atomic.Int64 // individual sends
		posts     atomic.Int64 // HTTP requests
		failed    atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	record := func(lat time.Duration) {
		latMu.Lock()
		latencies = append(latencies, lat)
		latMu.Unlock()
	}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// pending accumulates sends until a full batch is flushed.
			var pending []sendRequest
			var expect []program
			flush := func() {
				if len(pending) == 0 {
					return
				}
				t0 := time.Now()
				got, err := sendBatch(*addr, pending)
				record(time.Since(t0))
				posts.Add(1)
				sent.Add(int64(len(pending)))
				if err != nil {
					failed.Add(int64(len(pending)))
					fmt.Fprintf(os.Stderr, "loadgen: client %d batch: %v\n", c, err)
				} else {
					for i, p := range expect {
						switch {
						case got[i].Error != "":
							failed.Add(1)
							fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %s\n", c, p.Name, got[i].Error)
						case !*warm:
							if f, ok := got[i].Result.(float64); !ok || int32(f) != p.Check {
								failed.Add(1)
								fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %v, want %d\n", c, p.Name, got[i].Result, p.Check)
							}
						}
					}
				}
				pending, expect = pending[:0], expect[:0]
			}
			for r := 0; r < *rounds; r++ {
				for _, p := range programs {
					recv := p.Size
					if *warm {
						recv = p.Warm
					}
					if *batch == 1 {
						t0 := time.Now()
						got, err := send(*addr, recv, p.Entry)
						record(time.Since(t0))
						posts.Add(1)
						sent.Add(1)
						if err != nil {
							failed.Add(1)
							fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %v\n", c, p.Name, err)
							continue
						}
						if !*warm && got != p.Check {
							failed.Add(1)
							fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %d, want %d\n", c, p.Name, got, p.Check)
						}
						continue
					}
					pending = append(pending, sendRequest{Receiver: recv, Selector: p.Entry})
					expect = append(expect, p)
					if len(pending) >= *batch {
						flush()
					}
				}
			}
			flush()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	n := sent.Load()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	mode := "unbatched (POST /send)"
	if *batch > 1 {
		mode = fmt.Sprintf("batched ×%d (POST /batch)", *batch)
	}
	fmt.Printf("mode: %s\n", mode)
	fmt.Printf("sends: %d  http requests: %d  failures: %d  wall: %v\n",
		n, posts.Load(), failed.Load(), wall.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f sends/s (%.1f req/s) across %d clients\n",
		float64(n)/wall.Seconds(), float64(posts.Load())/wall.Seconds(), *clients)
	fmt.Printf("latency per request p50: %v  p90: %v  p99: %v  max: %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if *save {
		if err := postSave(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: save:", err)
			os.Exit(1)
		}
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// postSave asks the server to persist its machine image and reports what
// it wrote.
func postSave(addr string) error {
	resp, err := http.Post(addr+"/save", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decode /save: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
	}
	fmt.Printf("saved image: %d bytes to %s\n", out.Bytes, out.Path)
	return nil
}

func fetchPrograms(addr string) ([]program, error) {
	resp, err := http.Get(addr + "/programs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /programs: status %d", resp.StatusCode)
	}
	var out []program
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode /programs: %w", err)
	}
	return out, nil
}

func send(addr string, receiver int32, selector string) (int32, error) {
	body, _ := json.Marshal(map[string]any{"receiver": receiver, "selector": selector})
	resp, err := http.Post(addr+"/send", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("decode /send: %w", err)
	}
	if out.Error != "" {
		return 0, fmt.Errorf("machine error: %s", out.Error)
	}
	f, ok := out.Result.(float64)
	if !ok {
		return 0, fmt.Errorf("non-numeric result %v", out.Result)
	}
	return int32(f), nil
}

func sendBatch(addr string, reqs []sendRequest) ([]sendResponse, error) {
	body, _ := json.Marshal(reqs)
	resp, err := http.Post(addr+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /batch: status %d", resp.StatusCode)
	}
	var out []sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode /batch: %w", err)
	}
	if len(out) != len(reqs) {
		return nil, fmt.Errorf("batch returned %d results for %d sends", len(out), len(reqs))
	}
	return out, nil
}

// Command loadgen replays the workload suite against a running obarchd as
// concurrent HTTP traffic, validates every checksum, and reports
// throughput and latency percentiles (from the same fixed-bucket
// histogram the server uses, merged across clients — no lock on the
// recording path).
//
//	obarchd -addr :8373 &
//	loadgen -addr http://localhost:8373 -clients 8 -rounds 4
//	loadgen -addr http://localhost:8373 -clients 8 -rounds 4 -batch 16
//	loadgen -addr http://localhost:8373 -skew 0.5 -routing jsq
//
// With -batch K each client groups K sends into one POST /batch request,
// driving the pool's sharded DoAll fast path; the summary then reports
// sends/s alongside request throughput so batched and unbatched runs
// compare directly. The program list (entry selectors, measured sizes,
// expected checksums) is fetched from the server's /programs endpoint, so
// loadgen also works against a server that loaded custom sources.
//
// With -transport binary (plus -binary-addr HOST:PORT naming the
// daemon's obwire listener) the workload rides the persistent binary
// transport instead of HTTP: one connection per client, optionally
// pipelined -pipeline N frames deep. At depth 1 every send is a
// synchronous round trip through the same retry/backoff loop as HTTP
// (frame statuses map onto 429/503/transport one for one); at depth >1
// refusals are counted in-band like batch entries and not retried. The
// control plane — /programs, /rotate, /stats, /save — always speaks
// HTTP to -addr.
//
// With -skew F, a fraction F of sends carry an affinity key drawn from a
// deliberately skewed keyspace — 80% of keyed sends share one hot key,
// the rest spread over seven warm keys — pinning a disproportionate load
// onto a few shards while the remaining keyless sends float. That is the
// traffic shape join-shortest-queue routing exists for: against a
// `-routing jsq` server the keyless sends dodge the hot shards and tail
// latency drops versus `-routing rr` under the identical load. -routing
// asserts (via /stats) that the server is actually running the policy
// being measured, so A/B numbers cannot be mislabelled.
//
// When the server pushes back — 429 at admission, 503 for a deadline
// shed, or a failed connection — the send retries up to -retries times
// on exponential backoff with full jitter starting at -backoff (capped
// at 1s), so a drill against an overloaded or chaos-armed server
// measures recovery instead of dissolving into a retry storm. Every
// refusal and retry is counted by kind in the report and -out artifact.
// Batched refusals arrive in-band per send and are counted, not retried.
//
// With -save, loadgen finishes a run by POSTing /save, asking the server
// to persist its machine image to the path it was started with (-image),
// so a load test doubles as the write path of a warm-restart drill.
//
// With -expect-rotation, loadgen POSTs /rotate mid-run — once traffic is
// demonstrably in flight — and fails the run unless the rotation
// succeeds, the server's rotation counter ticks, and not one send was
// lost: the zero-downtime live-rotation drill as a single command.
// -p99budget DUR independently fails the run if the client-observed p99
// exceeds the budget, which is how the rotation drill proves the swap
// didn't just avoid errors but also stayed out of the tail.
//
// After the run, loadgen asks the server's /stats for its per-stage span
// percentiles (queue wait, service, decode, encode — the flight
// recorder's view of the same traffic) and prints them next to the
// client-side numbers. With -out FILE the entire run — config, client
// percentiles, error counts, server identity and stage spans — is
// written as one JSON document, so runs diff across PRs the same way
// the BENCH_*.json artifacts do.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

type program struct {
	Name  string `json:"name"`
	Entry string `json:"entry"`
	Size  int32  `json:"size"`
	Warm  int32  `json:"warm"`
	Check int32  `json:"check"`
}

type sendRequest struct {
	Receiver int32  `json:"receiver"`
	Selector string `json:"selector"`
	Key      uint64 `json:"key,omitempty"`
}

type sendResponse struct {
	Result any    `json:"result"`
	Error  string `json:"error"`
	Worker int    `json:"worker"`
}

// pickKey draws from the skewed keyspace: with probability skew the send
// is keyed, and a keyed send is 80% the hot key, 20% one of seven warm
// keys. Key 0 means keyless.
func pickKey(rng *rand.Rand, skew float64) uint64 {
	if skew <= 0 || rng.Float64() >= skew {
		return 0
	}
	if rng.Float64() < 0.8 {
		return 1
	}
	return 2 + rng.Uint64N(7)
}

func main() {
	addr := flag.String("addr", "http://localhost:8373", "obarchd base URL")
	clients := flag.Int("clients", 8, "concurrent clients")
	rounds := flag.Int("rounds", 2, "suite replays per client")
	name := flag.String("program", "", "restrict to one program by name")
	warm := flag.Bool("warm", false, "use warmup sizes instead of measured sizes (no checksum validation)")
	batch := flag.Int("batch", 1, "sends per POST /batch request (1: one POST /send per send)")
	transport := flag.String("transport", "http", `wire transport: "http" (POST /send, /batch) or "binary" (persistent obwire frames)`)
	binaryAddr := flag.String("binary-addr", "", "obwire HOST:PORT for -transport binary (the daemon's -binary-addr)")
	pipeline := flag.Int("pipeline", 1, "in-flight frames per client with -transport binary (1: synchronous round trips with retries)")
	save := flag.Bool("save", false, "POST /save after the run, persisting the server's machine image")
	skew := flag.Float64("skew", 0, "fraction of sends carrying a skewed affinity key (0: all keyless)")
	routing := flag.String("routing", "", `assert the server's keyless routing policy ("jsq" or "rr") before running`)
	retries := flag.Int("retries", 3, "retry budget per send for 429/503/transport refusals (0: fail fast)")
	backoff := flag.Duration("backoff", 5*time.Millisecond, "first retry backoff; doubles per attempt with full jitter, capped at 1s")
	out := flag.String("out", "", "write the full run result (config, percentiles, error counts, server stage spans) as JSON to this file")
	expectRotation := flag.Bool("expect-rotation", false, "POST /rotate mid-run and fail unless it succeeds with zero lost sends")
	p99Budget := flag.Duration("p99budget", 0, "fail the run if the client-observed p99 exceeds this (0: no budget)")
	flag.Parse()

	if *routing != "" {
		got, err := fetchRouting(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: routing check:", err)
			os.Exit(1)
		}
		if got != *routing {
			fmt.Fprintf(os.Stderr, "loadgen: server routes %q, want %q (restart obarchd with -routing %s)\n", got, *routing, *routing)
			os.Exit(1)
		}
	}
	programs, err := fetchPrograms(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *name != "" {
		kept := programs[:0]
		for _, p := range programs {
			if p.Name == *name {
				kept = append(kept, p)
			}
		}
		programs = kept
	}
	if len(programs) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no programs to run")
		os.Exit(1)
	}
	if *batch < 1 {
		*batch = 1
	}
	if *pipeline < 1 {
		*pipeline = 1
	}
	// The control plane (program list, routing checks, rotation drills,
	// /stats, /save) always speaks HTTP to -addr; -transport only picks
	// the wire the workload itself rides.
	binary := *transport == "binary"
	switch {
	case *transport != "http" && !binary:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -transport %q (want http or binary)\n", *transport)
		os.Exit(1)
	case binary && *binaryAddr == "":
		fmt.Fprintln(os.Stderr, "loadgen: -transport binary needs -binary-addr (the daemon's -binary-addr listener)")
		os.Exit(1)
	case binary && *batch > 1:
		fmt.Fprintln(os.Stderr, "loadgen: -batch applies to the http transport; use -pipeline with -transport binary")
		os.Exit(1)
	}

	var (
		wg       sync.WaitGroup
		sent     atomic.Int64 // individual sends
		posts    atomic.Int64 // HTTP requests
		failed   atomic.Int64
		keyed    atomic.Int64
		refusals refusalCounters
	)
	// Per-client latency histograms, merged after the run: the recording
	// path is a plain array increment, no shared state.
	hists := make([]stats.Histogram, *clients)
	maxLats := make([]time.Duration, *clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0x9e3779b97f4a7c15))
			rt := &retryer{max: *retries, base: *backoff, rng: rng, c: &refusals, posts: &posts}
			hist := &hists[c]
			record := func(lat time.Duration) {
				hist.Observe(lat)
				if lat > maxLats[c] {
					maxLats[c] = lat
				}
			}
			if binary {
				binRun{
					id: c, addr: *binaryAddr, pipeline: *pipeline,
					rounds: *rounds, warm: *warm, skew: *skew, programs: programs,
					rng: rng, rt: rt, record: record,
					sent: &sent, posts: &posts, failed: &failed, keyed: &keyed,
					refusals: &refusals,
				}.run()
				return
			}
			// pending accumulates sends until a full batch is flushed.
			var pending []sendRequest
			var expect []program
			flush := func() {
				if len(pending) == 0 {
					return
				}
				t0 := time.Now()
				got, err := sendBatch(*addr, pending)
				record(time.Since(t0))
				posts.Add(1)
				sent.Add(int64(len(pending)))
				if err != nil {
					failed.Add(int64(len(pending)))
					fmt.Fprintf(os.Stderr, "loadgen: client %d batch: %v\n", c, err)
				} else {
					for i, p := range expect {
						switch {
						case got[i].Error != "":
							// Batch refusals arrive in-band under HTTP
							// 200 and are not retried — a refused batch
							// entry is one lost send, counted by kind.
							refusals.classify(got[i].Error)
							failed.Add(1)
							fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %s\n", c, p.Name, got[i].Error)
						case !*warm:
							if f, ok := got[i].Result.(float64); !ok || int32(f) != p.Check {
								failed.Add(1)
								fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %v, want %d\n", c, p.Name, got[i].Result, p.Check)
							}
						}
					}
				}
				pending, expect = pending[:0], expect[:0]
			}
			for r := 0; r < *rounds; r++ {
				for _, p := range programs {
					recv := p.Size
					if *warm {
						recv = p.Warm
					}
					key := pickKey(rng, *skew)
					if key != 0 {
						keyed.Add(1)
					}
					if *batch == 1 {
						t0 := time.Now()
						// The recorded latency is what the client lived
						// through: refused attempts and their backoffs
						// included.
						got, err := rt.send(*addr, sendRequest{Receiver: recv, Selector: p.Entry, Key: key})
						record(time.Since(t0))
						sent.Add(1)
						if err != nil {
							failed.Add(1)
							fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %v\n", c, p.Name, err)
							continue
						}
						if !*warm && got != p.Check {
							failed.Add(1)
							fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %d, want %d\n", c, p.Name, got, p.Check)
						}
						continue
					}
					pending = append(pending, sendRequest{Receiver: recv, Selector: p.Entry, Key: key})
					expect = append(expect, p)
					if len(pending) >= *batch {
						flush()
					}
				}
			}
			flush()
		}(c)
	}
	// The rotation drill runs concurrently with the clients: wait until
	// traffic is demonstrably in flight, then swap the serving image out
	// from under it. A 409 means something else is mid-swap — back off and
	// try again; anything else is a verdict.
	var rot *rotationReport
	rotDone := make(chan struct{})
	if *expectRotation {
		go func() {
			defer close(rotDone)
			deadline := time.Now().Add(5 * time.Second)
			for sent.Load() < int64(*clients) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			rot = postRotate(*addr)
		}()
	} else {
		close(rotDone)
	}
	wg.Wait()
	<-rotDone
	wall := time.Since(start)

	n := sent.Load()
	var hist stats.Histogram
	var maxLat time.Duration
	for c := range hists {
		hist.Merge(&hists[c])
		if maxLats[c] > maxLat {
			maxLat = maxLats[c]
		}
	}
	mode := "unbatched (POST /send)"
	reqLabel := "http requests"
	if *batch > 1 {
		mode = fmt.Sprintf("batched ×%d (POST /batch)", *batch)
	}
	if binary {
		mode = fmt.Sprintf("binary (obwire %s, pipeline %d)", *binaryAddr, *pipeline)
		reqLabel = "frames"
	}
	fmt.Printf("mode: %s\n", mode)
	if *routing != "" {
		fmt.Printf("routing: %s (verified via /stats)\n", *routing)
	}
	if *skew > 0 {
		fmt.Printf("keyspace: %.0f%% keyed (hot-key skewed), %d of %d sends carried keys\n",
			*skew*100, keyed.Load(), n)
	}
	fmt.Printf("sends: %d  %s: %d  failures: %d  wall: %v\n",
		n, reqLabel, posts.Load(), failed.Load(), wall.Round(time.Millisecond))
	if v := refusals.retries.Load() + refusals.rejected.Load() + refusals.shed.Load() + refusals.transport.Load(); v > 0 {
		fmt.Printf("pushback: %d rejected (429)  %d shed (503)  %d transport  %d retries taken\n",
			refusals.rejected.Load(), refusals.shed.Load(), refusals.transport.Load(), refusals.retries.Load())
	}
	fmt.Printf("throughput: %.1f sends/s (%.1f req/s) across %d clients\n",
		float64(n)/wall.Seconds(), float64(posts.Load())/wall.Seconds(), *clients)
	// Quantile returns its bucket's upper bound, which can overshoot the
	// true maximum; the exact max is tracked, so clamp to it.
	pct := func(q float64) time.Duration {
		if v := hist.Quantile(q); v < maxLat {
			return v
		}
		return maxLat
	}
	fmt.Printf("latency per request p50: %v  p90: %v  p99: %v  max: %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), maxLat.Round(time.Microsecond))

	failures := failed.Load() > 0
	if *p99Budget > 0 {
		if p99 := pct(0.99); p99 > *p99Budget {
			fmt.Fprintf(os.Stderr, "loadgen: p99 %v exceeds budget %v\n", p99.Round(time.Microsecond), *p99Budget)
			failures = true
		} else {
			fmt.Printf("p99 budget: %v within %v\n", p99.Round(time.Microsecond), *p99Budget)
		}
	}

	// The server's view of the same traffic: per-stage span percentiles
	// from the flight recorder, plus the node's identity. A pre-PR-6
	// server answers /stats without these fields; report what's there.
	srv, err := fetchStageStats(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: server stats:", err)
	} else {
		printStage := func(name string, sp *stagePercentiles) {
			if sp != nil && sp.Count > 0 {
				fmt.Printf("server %-8s n=%-7d p50: %dµs  p90: %dµs  p99: %dµs  p999: %dµs\n",
					name, sp.Count, sp.P50, sp.P90, sp.P99, sp.P999)
			}
		}
		printStage("service", srv.ServiceUS)
		printStage("queue", srv.QueueUS)
		printStage("decode", srv.DecodeUS)
		printStage("encode", srv.EncodeUS)
		printStage("http", srv.HTTPLatencyUS)
	}

	// The rotation drill's verdict: the POST must have succeeded, the
	// server's counter must have ticked, and — checked with the shared
	// failure flag below — not one send may have been lost across the swap.
	if *expectRotation {
		switch {
		case rot == nil || rot.Error != "":
			msg := "rotation goroutine never ran"
			if rot != nil {
				msg = rot.Error
			}
			fmt.Fprintf(os.Stderr, "loadgen: expect-rotation: %s\n", msg)
			failures = true
		case srv == nil || srv.Rotations < 1:
			fmt.Fprintln(os.Stderr, "loadgen: expect-rotation: server reports no completed rotation")
			failures = true
		default:
			fmt.Printf("rotation: swapped onto %s in %.1fms mid-traffic (server rotations: %d, failures: %d)\n",
				rot.Path, rot.ElapsedMS, srv.Rotations, srv.RotateFailures)
		}
	}

	if *out != "" {
		artifact := runArtifact{
			Config: runConfig{
				Addr: *addr, Clients: *clients, Rounds: *rounds, Program: *name,
				Warm: *warm, Batch: *batch, Skew: *skew, Routing: *routing,
				Transport: *transport, BinaryAddr: *binaryAddr, Pipeline: *pipeline,
				Retries: *retries, BackoffMS: float64(backoff.Microseconds()) / 1e3,
				ExpectRotation: *expectRotation,
				P99BudgetMS:    float64(p99Budget.Microseconds()) / 1e3,
			},
			StartedAt:   start.UTC(),
			WallMS:      float64(wall.Microseconds()) / 1e3,
			Sends:       n,
			Posts:       posts.Load(),
			Failures:    failed.Load(),
			Keyed:       keyed.Load(),
			Retries:     refusals.retries.Load(),
			Rejected:    refusals.rejected.Load(),
			Shed:        refusals.shed.Load(),
			Transport:   refusals.transport.Load(),
			SendsPerSec: float64(n) / wall.Seconds(),
			ReqPerSec:   float64(posts.Load()) / wall.Seconds(),
			Client: clientPercentiles{
				Count: hist.Count(),
				P50:   pct(0.50).Microseconds(),
				P90:   pct(0.90).Microseconds(),
				P99:   pct(0.99).Microseconds(),
				P999:  pct(0.999).Microseconds(),
				Max:   maxLat.Microseconds(),
			},
			Server:   srv,
			Rotation: rot,
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: encode -out:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: write -out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote run artifact: %s\n", *out)
	}

	if *save {
		if err := postSave(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: save:", err)
			os.Exit(1)
		}
	}
	if failures {
		os.Exit(1)
	}
}

// runConfig is the knobs a run was driven with, preserved in -out
// artifacts so two runs can only be compared like for like.
type runConfig struct {
	Addr      string  `json:"addr"`
	Clients   int     `json:"clients"`
	Rounds    int     `json:"rounds"`
	Program   string  `json:"program,omitempty"`
	Warm      bool    `json:"warm,omitempty"`
	Batch     int     `json:"batch"`
	Skew      float64 `json:"skew,omitempty"`
	Routing   string  `json:"routing,omitempty"`
	Retries   int     `json:"retries"`
	BackoffMS float64 `json:"backoff_ms"`

	Transport  string `json:"transport"`
	BinaryAddr string `json:"binary_addr,omitempty"`
	Pipeline   int    `json:"pipeline,omitempty"`

	ExpectRotation bool    `json:"expect_rotation,omitempty"`
	P99BudgetMS    float64 `json:"p99_budget_ms,omitempty"`
}

// rotationReport is the -expect-rotation drill's outcome as kept in the
// -out artifact: what the POST /rotate answered, or why it failed.
type rotationReport struct {
	Path      string  `json:"path,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Rotations uint64  `json:"rotations,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// clientPercentiles is the client-observed whole-round-trip latency
// distribution in microseconds.
type clientPercentiles struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_us"`
	P90   int64  `json:"p90_us"`
	P99   int64  `json:"p99_us"`
	P999  int64  `json:"p999_us"`
	Max   int64  `json:"max_us"`
}

// stagePercentiles mirrors one of /stats' per-stage percentile objects
// (values in microseconds).
type stagePercentiles struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	P999  int64  `json:"p999"`
}

// serverView is what loadgen keeps of the server's /stats: identity plus
// the per-stage spans. Pointers stay nil against servers that predate a
// field, and omit cleanly from the artifact.
type serverView struct {
	StartTime      string            `json:"start_time,omitempty"`
	UptimeS        float64           `json:"uptime_s,omitempty"`
	Image          json.RawMessage   `json:"image,omitempty"`
	Routing        string            `json:"routing,omitempty"`
	Workers        int               `json:"workers,omitempty"`
	Requests       uint64            `json:"requests,omitempty"`
	Rotations      uint64            `json:"rotations,omitempty"`
	RotateFailures uint64            `json:"rotate_failures,omitempty"`
	Checkpoint     json.RawMessage   `json:"checkpoint,omitempty"`
	CheckpointAge  *float64          `json:"checkpoint_age_s,omitempty"`
	ServiceUS      *stagePercentiles `json:"service_us,omitempty"`
	QueueUS        *stagePercentiles `json:"queue_us,omitempty"`
	DecodeUS       *stagePercentiles `json:"decode_us,omitempty"`
	EncodeUS       *stagePercentiles `json:"encode_us,omitempty"`
	HTTPLatencyUS  *stagePercentiles `json:"http_latency_us,omitempty"`
}

// runArtifact is the -out document: one self-contained record of a run.
type runArtifact struct {
	Config      runConfig         `json:"config"`
	StartedAt   time.Time         `json:"started_at"`
	WallMS      float64           `json:"wall_ms"`
	Sends       int64             `json:"sends"`
	Posts       int64             `json:"http_requests"`
	Failures    int64             `json:"failures"`
	Keyed       int64             `json:"keyed_sends,omitempty"`
	Retries     int64             `json:"retries,omitempty"`
	Rejected    int64             `json:"rejected,omitempty"`
	Shed        int64             `json:"shed,omitempty"`
	Transport   int64             `json:"transport_errors,omitempty"`
	SendsPerSec float64           `json:"sends_per_sec"`
	ReqPerSec   float64           `json:"req_per_sec"`
	Client      clientPercentiles `json:"client_latency"`
	Server      *serverView       `json:"server,omitempty"`
	Rotation    *rotationReport   `json:"rotation,omitempty"`
}

// postRotate runs the rotation drill's POST /rotate (empty body: the
// server rotates onto its own -image path). A 409 — something else
// mid-swap — is retried on a short backoff; every other failure is final.
func postRotate(addr string) *rotationReport {
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(addr+"/rotate", "application/json", nil)
		if err != nil {
			return &rotationReport{Error: err.Error()}
		}
		var out struct {
			Path      string `json:"path"`
			Rotations uint64 `json:"rotations"`
			ElapsedUS int64  `json:"elapsed_us"`
			Error     string `json:"error"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusConflict && attempt < 10:
			time.Sleep(50 * time.Millisecond)
			continue
		case resp.StatusCode != http.StatusOK:
			msg := out.Error
			if msg == "" {
				msg = fmt.Sprintf("status %d", resp.StatusCode)
			}
			return &rotationReport{Error: fmt.Sprintf("POST /rotate: %s", msg)}
		case decodeErr != nil:
			return &rotationReport{Error: fmt.Sprintf("decode /rotate: %v", decodeErr)}
		}
		return &rotationReport{Path: out.Path, ElapsedMS: float64(out.ElapsedUS) / 1e3, Rotations: out.Rotations}
	}
}

// fetchStageStats reads the server's identity and per-stage percentiles
// from /stats.
func fetchStageStats(addr string) (*serverView, error) {
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	var out serverView
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode /stats: %w", err)
	}
	return &out, nil
}

// postSave asks the server to persist its machine image and reports what
// it wrote.
func postSave(addr string) error {
	resp, err := http.Post(addr+"/save", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decode /save: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
	}
	fmt.Printf("saved image: %d bytes to %s\n", out.Bytes, out.Path)
	return nil
}

// fetchRouting reads the server's keyless routing policy from /stats.
func fetchRouting(addr string) (string, error) {
	resp, err := http.Get(addr + "/stats")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	var out struct {
		Routing string `json:"routing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("decode /stats: %w", err)
	}
	if out.Routing == "" {
		return "", fmt.Errorf("server reports no routing policy (pre-JSQ obarchd?)")
	}
	return out.Routing, nil
}

func fetchPrograms(addr string) ([]program, error) {
	resp, err := http.Get(addr + "/programs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /programs: status %d", resp.StatusCode)
	}
	var out []program
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode /programs: %w", err)
	}
	return out, nil
}

// send posts one message send and reports the HTTP status alongside the
// result, so the retry loop can tell an admission refusal (429) or a
// deadline shed (503) from a machine error. Status 0 means the request
// never got an HTTP answer at all — a transport failure. The third
// return is the server's Retry-After suggestion (0 when none), which
// the retry loop honors as its backoff floor.
func send(addr string, req sendRequest) (int32, int, time.Duration, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(addr+"/send", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	ra := retryAfter(resp.Header)
	var out sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, resp.StatusCode, ra, fmt.Errorf("decode /send: %w", err)
	}
	if out.Error != "" {
		return 0, resp.StatusCode, ra, fmt.Errorf("server error: %s", out.Error)
	}
	f, ok := out.Result.(float64)
	if !ok {
		return 0, resp.StatusCode, ra, fmt.Errorf("non-numeric result %v", out.Result)
	}
	return int32(f), resp.StatusCode, ra, nil
}

func sendBatch(addr string, reqs []sendRequest) ([]sendResponse, error) {
	body, _ := json.Marshal(reqs)
	resp, err := http.Post(addr+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /batch: status %d", resp.StatusCode)
	}
	var out []sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode /batch: %w", err)
	}
	if len(out) != len(reqs) {
		return nil, fmt.Errorf("batch returned %d results for %d sends", len(out), len(reqs))
	}
	return out, nil
}

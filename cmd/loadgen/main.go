// Command loadgen replays the workload suite against a running obarchd as
// concurrent HTTP traffic, validates every checksum, and reports
// throughput and latency.
//
//	obarchd -addr :8373 &
//	loadgen -addr http://localhost:8373 -clients 8 -rounds 4
//
// The program list (entry selectors, measured sizes, expected checksums)
// is fetched from the server's /programs endpoint, so loadgen also works
// against a server that loaded custom sources alongside the suite.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type program struct {
	Name  string `json:"name"`
	Entry string `json:"entry"`
	Size  int32  `json:"size"`
	Warm  int32  `json:"warm"`
	Check int32  `json:"check"`
}

type sendResponse struct {
	Result any    `json:"result"`
	Error  string `json:"error"`
	Worker int    `json:"worker"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8373", "obarchd base URL")
	clients := flag.Int("clients", 8, "concurrent clients")
	rounds := flag.Int("rounds", 2, "suite replays per client")
	name := flag.String("program", "", "restrict to one program by name")
	warm := flag.Bool("warm", false, "use warmup sizes instead of measured sizes (no checksum validation)")
	flag.Parse()

	programs, err := fetchPrograms(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *name != "" {
		kept := programs[:0]
		for _, p := range programs {
			if p.Name == *name {
				kept = append(kept, p)
			}
		}
		programs = kept
	}
	if len(programs) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no programs to run")
		os.Exit(1)
	}

	var (
		wg        sync.WaitGroup
		sent      atomic.Int64
		failed    atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				for _, p := range programs {
					recv := p.Size
					if *warm {
						recv = p.Warm
					}
					t0 := time.Now()
					got, err := send(*addr, recv, p.Entry)
					lat := time.Since(t0)
					sent.Add(1)
					latMu.Lock()
					latencies = append(latencies, lat)
					latMu.Unlock()
					if err != nil {
						failed.Add(1)
						fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %v\n", c, p.Name, err)
						continue
					}
					if !*warm && got != p.Check {
						failed.Add(1)
						fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %d, want %d\n", c, p.Name, got, p.Check)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	n := sent.Load()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("requests: %d  failures: %d  wall: %v\n", n, failed.Load(), wall.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f req/s across %d clients\n", float64(n)/wall.Seconds(), *clients)
	fmt.Printf("latency p50: %v  p90: %v  p99: %v  max: %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

func fetchPrograms(addr string) ([]program, error) {
	resp, err := http.Get(addr + "/programs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /programs: status %d", resp.StatusCode)
	}
	var out []program
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode /programs: %w", err)
	}
	return out, nil
}

func send(addr string, receiver int32, selector string) (int32, error) {
	body, _ := json.Marshal(map[string]any{"receiver": receiver, "selector": selector})
	resp, err := http.Post(addr+"/send", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out sendResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("decode /send: %w", err)
	}
	if out.Error != "" {
		return 0, fmt.Errorf("machine error: %s", out.Error)
	}
	f, ok := out.Result.(float64)
	if !ok {
		return 0, fmt.Errorf("non-numeric result %v", out.Result)
	}
	return int32(f), nil
}

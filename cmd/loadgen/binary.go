// The -transport binary client: the same workload replay, checksum
// validation, refusal accounting, and backoff story as the HTTP path,
// but over one persistent obwire connection per client. With -pipeline 1
// each send is a synchronous round trip driven through the shared
// retryer — frame statuses map onto the HTTP statuses the retry loop
// already understands, so backoff behaviour carries over byte for byte.
// With -pipeline N each client keeps up to N frames in flight and
// refusals are counted in-band like batch entries: one refused frame is
// one lost send, classified by status, never retried.
package main

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obwire"
	"repro/internal/serve"
	"repro/internal/word"
)

// binClient is one client's lazily-dialed obwire connection. A transport
// error drops it; the next send redials — the reconnect half of the
// retry story when the server is restarting. Consecutive dial failures
// back off on the retryer's own capped exponential ladder before the
// next attempt, so a client facing a dead address paces its redials
// instead of spinning a tight connect loop against it.
type binClient struct {
	addr  string
	c     *obwire.Client
	fails int // consecutive dial failures; reset by a successful dial

	// Injectable seams so the backoff schedule is unit-testable without
	// a real listener or wall-clock sleeps.
	dial  func(addr string) (*obwire.Client, error)
	delay func(fails int) time.Duration
	sleep func(time.Duration)
}

// newBinClient wires a client to the real dialer and the shared
// retryer's backoff ladder: redials and refused-send retries pace
// themselves off the same capped full-jitter schedule.
func newBinClient(addr string, rt *retryer) *binClient {
	return &binClient{
		addr:  addr,
		dial:  obwire.Dial,
		delay: func(fails int) time.Duration { return rt.backoffDelay(fails-1, 0) },
		sleep: time.Sleep,
	}
}

func (b *binClient) ensure() error {
	if b.c != nil {
		return nil
	}
	if b.fails > 0 {
		// Every attempt after a failure waits out the ladder first: the
		// previous tight-loop redial could hammer a restarting server
		// with thousands of connects per second.
		b.sleep(b.delay(b.fails))
	}
	c, err := b.dial(b.addr)
	if err != nil {
		b.fails++
		return err
	}
	b.fails = 0
	b.c = c
	return nil
}

func (b *binClient) drop() {
	if b.c != nil {
		b.c.Close()
		b.c = nil
	}
}

// statusOf maps a frame status onto the HTTP status the retryer already
// classifies: the obwire statuses mirror the HTTP map one for one.
func statusOf(r obwire.Response) int {
	switch r.Status {
	case obwire.StatusOK:
		return http.StatusOK
	case obwire.StatusOverloaded:
		return http.StatusTooManyRequests
	case obwire.StatusShed:
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// do is the synchronous round trip in the retryer's shape: value,
// HTTP-equivalent status, error. Status 0 is a transport failure, which
// also drops the connection so the retry redials.
func (b *binClient) do(req serve.Request) (int32, int, error) {
	if err := b.ensure(); err != nil {
		return 0, 0, err
	}
	r, err := b.c.Do(req)
	if err != nil {
		b.drop()
		return 0, 0, err
	}
	if !r.OK() {
		return 0, statusOf(r), fmt.Errorf("server error: %s", r.Err)
	}
	v, ok := r.Value.IntOK()
	if !ok {
		return 0, http.StatusOK, fmt.Errorf("non-integer result %v", r.Value)
	}
	return v, http.StatusOK, nil
}

// binRun is everything one binary-transport client goroutine needs —
// the shared counters are the same ones the HTTP path feeds, so the
// report and -out artifact are transport-agnostic.
type binRun struct {
	id       int
	addr     string
	pipeline int
	rounds   int
	warm     bool
	skew     float64
	programs []program

	rng    *rand.Rand
	rt     *retryer
	record func(time.Duration)

	sent, posts, failed, keyed *atomic.Int64
	refusals                   *refusalCounters
}

// inflightSend is one pipelined frame awaiting its response: the program
// whose checksum it must answer, and when it was sent — the recorded
// latency spans the whole pipeline residence, which is what the client
// lived through.
type inflightSend struct {
	p  program
	t0 time.Time
}

// run replays the suite over obwire. Depth 1 routes every send through
// the retryer (backoff and reconnect included); deeper pipelines keep
// the window full and classify refusals in-band.
func (r binRun) run() {
	bc := newBinClient(r.addr, r.rt)
	defer bc.drop()

	var q []inflightSend
	// recvOne consumes the oldest in-flight response. A transport error
	// loses the entire window: each lost send is a counted failure, the
	// connection drops, and the next send redials.
	recvOne := func() {
		e := q[0]
		q = q[1:]
		resp, err := bc.c.Recv()
		r.record(time.Since(e.t0))
		if err != nil {
			r.refusals.transport.Add(1)
			r.failed.Add(int64(len(q) + 1))
			fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %v (%d pipelined sends lost)\n", r.id, e.p.Name, err, len(q)+1)
			q = q[:0]
			bc.drop()
			return
		}
		switch {
		case !resp.OK():
			// In-band refusal or machine error: counted by kind like a
			// batch entry, one lost send, not retried.
			r.refusals.classifyStatus(resp.Status)
			r.failed.Add(1)
			fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %s\n", r.id, e.p.Name, resp.Err)
		case !r.warm:
			if v, ok := resp.Value.IntOK(); !ok || v != e.p.Check {
				r.failed.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %v, want %d\n", r.id, e.p.Name, resp.Value, e.p.Check)
			}
		}
	}

	for round := 0; round < r.rounds; round++ {
		for _, p := range r.programs {
			recv := p.Size
			if r.warm {
				recv = p.Warm
			}
			key := pickKey(r.rng, r.skew)
			if key != 0 {
				r.keyed.Add(1)
			}
			req := serve.Request{Receiver: word.FromInt(recv), Selector: p.Entry, Key: key}

			if r.pipeline <= 1 {
				t0 := time.Now()
				got, err := r.rt.sendVia(func() (int32, int, time.Duration, error) {
					v, status, err := bc.do(req)
					return v, status, 0, err // no Retry-After channel in-band; the ladder alone paces
				})
				r.record(time.Since(t0))
				r.sent.Add(1)
				if err != nil {
					r.failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: client %d %s: %v\n", r.id, p.Name, err)
					continue
				}
				if !r.warm && got != p.Check {
					r.failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: client %d %s: checksum %d, want %d\n", r.id, p.Name, got, p.Check)
				}
				continue
			}

			// Pipelined: redial if the last window died, enqueue, and
			// pull one response whenever the window is full.
			if err := bc.ensure(); err != nil {
				r.refusals.transport.Add(1)
				r.sent.Add(1)
				r.posts.Add(1)
				r.failed.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: client %d dial: %v\n", r.id, err)
				continue
			}
			if _, err := bc.c.Send(req); err != nil {
				r.refusals.transport.Add(1)
				r.sent.Add(1)
				r.posts.Add(1)
				r.failed.Add(int64(len(q) + 1))
				fmt.Fprintf(os.Stderr, "loadgen: client %d %s: send: %v (%d pipelined sends lost)\n", r.id, p.Name, err, len(q)+1)
				q = q[:0]
				bc.drop()
				continue
			}
			r.sent.Add(1)
			r.posts.Add(1)
			q = append(q, inflightSend{p: p, t0: time.Now()})
			for len(q) >= r.pipeline {
				recvOne()
			}
		}
	}
	for len(q) > 0 {
		recvOne()
	}
}

// Client-side backoff: when obarchd pushes back (429 at admission, 503
// for a deadline shed, or the connection itself fails), hammering the
// same node straight away is how a load test turns into a retry storm.
// Refused sends instead retry on exponential backoff with full jitter,
// and every form of pushback is counted so the run report and -out
// artifact show how hard the server defended itself.
package main

import (
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obwire"
)

// refusalCounters aggregates every client's view of server pushback.
type refusalCounters struct {
	retries   atomic.Int64 // backoff-then-retry cycles actually taken
	rejected  atomic.Int64 // 429 admission refusals observed
	shed      atomic.Int64 // 503 deadline sheds observed
	transport atomic.Int64 // connection-level failures observed
}

// classify sorts one inline batch failure by its error text: the batch
// path reports per-send refusals in-band under HTTP 200, so the message
// is all there is to go on. Unrecognised errors are real failures and
// stay unclassified.
func (c *refusalCounters) classify(msg string) {
	switch {
	case strings.Contains(msg, "overloaded"):
		c.rejected.Add(1)
	case strings.Contains(msg, "expired"):
		c.shed.Add(1)
	}
}

// classifyStatus is classify's binary-transport counterpart: pipelined
// obwire refusals arrive as frame statuses rather than error text.
func (c *refusalCounters) classifyStatus(status uint8) {
	switch status {
	case obwire.StatusOverloaded:
		c.rejected.Add(1)
	case obwire.StatusShed:
		c.shed.Add(1)
	}
}

// retryer drives one client's refused sends through the backoff loop.
// rng is the client's own deterministic stream (shared with its key
// picker), so a seeded run jitters reproducibly.
type retryer struct {
	max   int           // retries after the first attempt
	base  time.Duration // first backoff; doubles per attempt
	rng   interface{ Int64N(int64) int64 }
	c     *refusalCounters
	posts *atomic.Int64 // every HTTP attempt, retries included
}

// maxRetryAfter caps how long a server-suggested Retry-After can hold
// the client: honoring an arbitrary header value would let one bad
// response park a load generator forever.
const maxRetryAfter = 5 * time.Second

// backoffDelay is full-jitter exponential backoff: uniform over
// (0, base<<attempt], capped at one second. Full jitter (rather than
// jitter around the midpoint) is what de-synchronises a fleet of
// clients that were all refused by the same overload spike. floor, when
// positive, is the server's own Retry-After suggestion: the jittered
// delay never comes back sooner than the server asked (bounded by
// maxRetryAfter), because a server that names a time knows more about
// its recovery than our exponent does.
func (r *retryer) backoffDelay(attempt int, floor time.Duration) time.Duration {
	d := r.base << attempt
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	delay := time.Duration(r.rng.Int64N(int64(d))) + 1
	if floor > maxRetryAfter {
		floor = maxRetryAfter
	}
	if delay < floor {
		delay = floor
	}
	return delay
}

// retryAfter reads a response's Retry-After header as a delay floor:
// delta-seconds per RFC 9110 (the only form obarchd and obrouter emit),
// 0 when absent or unparseable. The HTTP-date form is deliberately
// ignored rather than guessed at.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryable classifies one attempt's outcome into the refusal counters
// and reports whether backing off and retrying can help: admission
// refusals and sheds are transient by construction, transport errors
// usually mean the node is restarting, and everything else (machine
// errors, malformed responses) would just fail identically again.
func (r *retryer) retryable(status int, err error) bool {
	switch {
	case err == nil:
		return false
	case status == http.StatusTooManyRequests:
		r.c.rejected.Add(1)
		return true
	case status == http.StatusServiceUnavailable:
		r.c.shed.Add(1)
		return true
	case status == 0:
		r.c.transport.Add(1)
		return true
	}
	return false
}

// sendVia drives one attempt function through the retry loop: refusals
// back off and retry until they stick or the budget runs out, and the
// returned error is the last attempt's. The attempt reports an
// HTTP-equivalent status (0 for transport failure), which is how the
// binary transport shares this loop and its counters with the HTTP one,
// plus the server's Retry-After suggestion (0 when none) as the backoff
// floor for the next attempt.
func (r *retryer) sendVia(via func() (int32, int, time.Duration, error)) (int32, error) {
	for attempt := 0; ; attempt++ {
		val, status, floor, err := via()
		r.posts.Add(1)
		if !r.retryable(status, err) || attempt >= r.max {
			return val, err
		}
		r.c.retries.Add(1)
		time.Sleep(r.backoffDelay(attempt, floor))
	}
}

// send posts one HTTP request through the retry loop.
func (r *retryer) send(addr string, req sendRequest) (int32, error) {
	return r.sendVia(func() (int32, int, time.Duration, error) { return send(addr, req) })
}

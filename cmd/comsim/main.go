// Command comsim compiles a source file for the Caltech Object Machine
// and performs a send, printing the answer and the machine statistics.
//
//	comsim -recv 10 -send fact prog.st
//	comsim -recv 100 -send benchArith -blocks 16 -noitlb prog.st
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	recv := flag.Int("recv", 0, "integer receiver of the entry send")
	send := flag.String("send", "main", "selector to send")
	blocks := flag.Int("blocks", 0, "context cache blocks (default 32)")
	noitlb := flag.Bool("noitlb", false, "disable the ITLB (full lookup per dispatch)")
	stats := flag.Bool("stats", true, "print machine statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: comsim [flags] file.st")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "comsim:", err)
		os.Exit(1)
	}
	sys := obarch.NewSystem(obarch.Options{CtxBlocks: *blocks, NoITLB: *noitlb})
	if err := sys.Load(string(src)); err != nil {
		fmt.Fprintln(os.Stderr, "comsim:", err)
		os.Exit(1)
	}
	res, err := sys.Send(obarch.Int(int32(*recv)), *send)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%d %s → %v\n", *recv, *send, res)
	if *stats {
		s := sys.Stats()
		fmt.Printf("instructions: %d  cycles: %d  CPI: %.2f\n", s.Instructions, s.Cycles, s.CPI())
		fmt.Printf("sends: %d  primitive ops: %d  returns: %d (LIFO %.1f%%)\n",
			s.Sends, s.PrimOps, s.Returns, 100*s.LIFOShare())
		fmt.Printf("context refs: %d  memory refs: %d (to contexts %.1f%%)\n",
			s.CtxOperandRefs, s.MemRefs, 100*s.RefsToContextShare())
		fmt.Printf("ITLB hit ratio: %.2f%%  lookup cycles: %d\n",
			100*sys.ITLBHitRatio(), s.LookupCycles)
	}
}

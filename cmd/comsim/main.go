// Command comsim compiles a source file for the Caltech Object Machine
// and performs a send, printing the answer and the machine statistics.
//
//	comsim -recv 10 -send fact prog.st
//	comsim -recv 100 -send benchArith -blocks 16 -noitlb prog.st
//
// Machines can be persisted and revived through the binary image format
// of package repro/internal/image:
//
//	comsim -send "" -save-image prog.img prog.st   # compile once, emit the image
//	comsim -recv 10 -send fact -image prog.img     # boot from it: no compile
//
// With -image the machine is loaded from disk instead of compiled; any
// source files given are loaded on top of it. With -save-image the
// machine's snapshot is written after the send (so a warmed ITLB travels
// into the image); pass -send "" to skip the send and emit a pristine
// image.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	recv := flag.Int("recv", 0, "integer receiver of the entry send")
	send := flag.String("send", "main", "selector to send (empty: no send, e.g. when only emitting an image)")
	blocks := flag.Int("blocks", 0, "context cache blocks (default 32)")
	noitlb := flag.Bool("noitlb", false, "disable the ITLB (full lookup per dispatch)")
	stats := flag.Bool("stats", true, "print machine statistics")
	imagePath := flag.String("image", "", "boot from this machine image instead of compiling")
	saveImage := flag.String("save-image", "", "write the machine image here before exiting")
	flag.Parse()
	if flag.NArg() == 0 && *imagePath == "" {
		fmt.Fprintln(os.Stderr, "usage: comsim [flags] file.st ...  (or -image machine.img)")
		os.Exit(2)
	}

	sys := obarch.NewSystem(obarch.Options{CtxBlocks: *blocks, NoITLB: *noitlb})
	if *imagePath != "" {
		// The image carries its own machine configuration; geometry flags
		// only apply when the machine is built here.
		if *blocks != 0 || *noitlb {
			fmt.Fprintln(os.Stderr, "comsim: -blocks/-noitlb are ignored with -image (the image fixes the machine configuration)")
		}
		f, err := os.Open(*imagePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		if _, err := sys.LoadImage(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		f.Close()
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		if err := sys.Load(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "comsim: load %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	if *send != "" {
		res, err := sys.Send(obarch.Int(int32(*recv)), *send)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%d %s → %v\n", *recv, *send, res)
		if *stats {
			s := sys.Stats()
			fmt.Printf("instructions: %d  cycles: %d  CPI: %.2f\n", s.Instructions, s.Cycles, s.CPI())
			fmt.Printf("sends: %d  primitive ops: %d  returns: %d (LIFO %.1f%%)\n",
				s.Sends, s.PrimOps, s.Returns, 100*s.LIFOShare())
			fmt.Printf("context refs: %d  memory refs: %d (to contexts %.1f%%)\n",
				s.CtxOperandRefs, s.MemRefs, 100*s.RefsToContextShare())
			fmt.Printf("ITLB hit ratio: %.2f%%  lookup cycles: %d\n",
				100*sys.ITLBHitRatio(), s.LookupCycles)
		}
	}

	if *saveImage != "" {
		f, err := os.Create(*saveImage)
		if err != nil {
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		if err := sys.SaveImage(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		size, _ := f.Seek(0, 2)
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "comsim:", err)
			os.Exit(1)
		}
		fmt.Printf("image: wrote %d bytes to %s\n", size, *saveImage)
	}
}

// Command comasm assembles and disassembles COM machine code, the 32-bit
// three-address abstract-instruction format of §3.3.
//
//	comasm file.asm          # assemble, print encodings + round-trip listing
//	echo "add c4, c4, =1" | comasm -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: comasm file.asm  (- for stdin)")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "comasm:", err)
		os.Exit(1)
	}
	asm := isa.NewAssembler()
	// Unknown mnemonics assemble as dynamic opcodes numbered upward so
	// stand-alone listings can include message sends.
	next := isa.FirstDynamic
	dyn := map[string]isa.Opcode{}
	names := map[isa.Opcode]string{}
	asm.Resolve = func(name string) (isa.Opcode, bool) {
		if op, ok := dyn[name]; ok {
			return op, true
		}
		if next == 0 {
			return 0, false
		}
		op := next
		next++
		dyn[name] = op
		names[op] = name
		return op, true
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "comasm:", err)
		os.Exit(1)
	}
	for i, enc := range p.Code {
		fmt.Printf("%4d  %08x\n", i, enc)
	}
	fmt.Println("literals:")
	for i, l := range p.Literals {
		fmt.Printf("  #%d = %v\n", i, l)
	}
	fmt.Println("listing:")
	fmt.Print(isa.Disassemble(p.Code, names))
}

// Dispatch: watch the instruction translation lookaside buffer earn its
// keep. The same program runs with the paper's 512-entry 2-way ITLB, a
// tiny direct-mapped one, and no ITLB at all (full method lookup on every
// abstract instruction), reproducing the shape of experiment T6.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
class A extends Object [ method go: x [ ^x + 1 ] ]
class B extends Object [ method go: x [ ^x * 2 ] ]
class C extends Object [ method go: x [ ^x - 3 ] ]
class D extends Object [ method go: x [ ^x / 2 ] ]
extend SmallInt [
	method churn [
		| objs acc i o |
		objs := Array new: 4.
		objs at: 0 put: A new. objs at: 1 put: B new.
		objs at: 2 put: C new. objs at: 3 put: D new.
		acc := 0. i := 0.
		[ i < self ] whileTrue: [
			o := objs at: i \\ 4.
			acc := (o go: acc) \\ 1000.
			i := i + 1 ].
		^acc
	]
]
`

func run(name string, opt obarch.Options) {
	sys := obarch.NewSystem(opt)
	if err := sys.Load(src); err != nil {
		log.Fatal(err)
	}
	res, err := sys.SendInt(2000, "churn")
	if err != nil {
		log.Fatal(err)
	}
	s := sys.Stats()
	fmt.Printf("%-22s result=%3d cycles=%8d CPI=%5.2f lookup-cycles=%7d ITLB-hits=%6.2f%%\n",
		name, res, s.Cycles, s.CPI(), s.LookupCycles, 100*sys.ITLBHitRatio())
}

func main() {
	fmt.Println("2000 megamorphic sends through four classes:")
	run("ITLB 512x2 (paper)", obarch.Options{})
	run("ITLB 16x1 (tiny)", obarch.Options{ITLBEntries: 16, ITLBAssoc: 1})
	run("no ITLB (ablation)", obarch.Options{NoITLB: true})
	fmt.Println("\nthe gap between rows is the method lookup overhead the paper eliminates")
}

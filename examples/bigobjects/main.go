// Bigobjects: the small object problem of §2.2. One floating point address
// format serves thousands of tiny objects and a large image buffer at
// once, and an object that outgrows its exponent is re-aliased with
// trap-based forwarding — the old pointer keeps working.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sys := obarch.NewSystem(obarch.Options{})

	// Thousands of small objects: every one is its own segment, named
	// with a small exponent. No fixed segment-count ceiling applies.
	var cells []obarch.Value
	for i := 0; i < 2000; i++ {
		c, err := sys.NewInstanceOf("Array", 2)
		if err != nil {
			log.Fatalf("small object %d: %v", i, err)
		}
		sys.AddRoot(c)
		cells = append(cells, c)
	}
	sys.Send(cells[1999], "at:put:", obarch.Int(0), obarch.Int(42))

	// One large object in the same name space: a 64K-word "image".
	image, err := sys.NewInstanceOf("Array", 65536)
	if err != nil {
		log.Fatal(err)
	}
	sys.AddRoot(image)
	sys.Send(image, "at:put:", obarch.Int(65535), obarch.Int(7))
	last, _ := sys.Send(image, "at:", obarch.Int(65535))
	fmt.Printf("2000 small objects and a 65536-word image coexist; image[65535]=%v\n", last)

	// Growth: a buffer that outgrows its exponent is reallocated under a
	// wider exponent; the old name forwards (§2.2 aliasing).
	buf, _ := sys.NewInstanceOf("Array", 4)
	sys.AddRoot(buf)
	sys.Send(buf, "at:put:", obarch.Int(0), obarch.Int(11))
	grown, err := sys.Send(buf, "grow:", obarch.Int(1024))
	if err != nil {
		log.Fatal(err)
	}
	// Old pointer, new capacity: index 900 exceeds the old exponent
	// bound, traps, and is forwarded to the new segment.
	if _, err := sys.Send(buf, "at:put:", obarch.Int(900), obarch.Int(99)); err != nil {
		log.Fatal(err)
	}
	v0, _ := sys.Send(grown, "at:", obarch.Int(0))
	v900, _ := sys.Send(grown, "at:", obarch.Int(900))
	sz, _ := sys.Send(grown, "size")
	fmt.Printf("grown buffer: size=%v preserved[0]=%v forwarded[900]=%v\n", sz, v0, v900)

	// The collector reclaims whatever the host lets go of.
	sys.ClearRoots()
	st := sys.Collect()
	fmt.Printf("after dropping roots: swept %d objects, %d live segments remain\n",
		st.SweptObjects, st.Live)
}

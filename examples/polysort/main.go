// Polysort: the paper's §2.1 motivation made concrete — one general sort
// routine, written once, reused across datatypes that did not exist when
// it was written ("it is easy to define a general sort routine — one which
// will even work for lists of datatypes which are not yet defined").
package main

import (
	"fmt"
	"log"

	"repro"
)

const sorter = `
extend Array [
	method sortFirst: n [
		| i j v |
		i := 1.
		[ i < n ] whileTrue: [
			v := self at: i.
			j := i - 1.
			[ (0 <= j) and: [ v < (self at: j) ] ] whileTrue: [
				self at: j + 1 put: (self at: j).
				j := j - 1 ].
			self at: j + 1 put: v.
			i := i + 1 ].
		^self
	]
]
`

// A datatype defined *after* the sorter, ordered by total harm descending
// — the sorter never heard of it and sorts it anyway, late binding doing
// the work the paper promises.
const newType = `
class Fraction extends Object [
	| num den |
	method setNum: n den: d [ num := n. den := d ]
	method num [ ^num ]
	method den [ ^den ]
	method < other [ ^(num * other den) < (other num * den) ]
]
`

func main() {
	sys := obarch.NewSystem(obarch.Options{})
	if err := sys.Load(sorter); err != nil {
		log.Fatal(err)
	}

	// 1. Sort integers: < is the hardware comparison.
	ints, _ := sys.NewInstanceOf("Array", 8)
	for i, v := range []int32{5, 3, 8, 1, 9, 2, 7, 4} {
		sys.Send(ints, "at:put:", obarch.Int(int32(i)), obarch.Int(v))
	}
	if _, err := sys.Send(ints, "sortFirst:", obarch.Int(8)); err != nil {
		log.Fatal(err)
	}
	fmt.Print("sorted ints:   ")
	printAll(sys, ints, 8)

	// 2. Sort floats with the same code: < widens via the mixed-mode
	// function unit.
	floats, _ := sys.NewInstanceOf("Array", 5)
	for i, v := range []float32{2.5, 0.5, 3.25, 1.0, 2.0} {
		sys.Send(floats, "at:put:", obarch.Int(int32(i)), obarch.Float(v))
	}
	sys.Send(floats, "sortFirst:", obarch.Int(5))
	fmt.Print("sorted floats: ")
	printAll(sys, floats, 5)

	// 3. Define a brand-new class and sort it with the same routine: <
	// now resolves, through the ITLB, to Fraction>>< .
	if err := sys.Load(newType); err != nil {
		log.Fatal(err)
	}
	fracs, _ := sys.NewInstanceOf("Array", 4)
	for i, nd := range [][2]int32{{3, 4}, {1, 3}, {5, 6}, {1, 2}} {
		f, _ := sys.NewInstanceOf("Fraction", 0)
		sys.Send(f, "setNum:den:", obarch.Int(nd[0]), obarch.Int(nd[1]))
		sys.Send(fracs, "at:put:", obarch.Int(int32(i)), f)
	}
	if _, err := sys.Send(fracs, "sortFirst:", obarch.Int(4)); err != nil {
		log.Fatal(err)
	}
	fmt.Print("sorted fracs:  ")
	for i := int32(0); i < 4; i++ {
		f, _ := sys.Send(fracs, "at:", obarch.Int(i))
		n, _ := sys.Send(f, "num")
		d, _ := sys.Send(f, "den")
		fmt.Printf("%v/%v ", n, d)
	}
	fmt.Println()
	fmt.Printf("ITLB hit ratio across all three sorts: %.2f%%\n", 100*sys.ITLBHitRatio())
}

func printAll(sys *obarch.System, arr obarch.Value, n int32) {
	for i := int32(0); i < n; i++ {
		v, _ := sys.Send(arr, "at:", obarch.Int(i))
		fmt.Printf("%v ", v)
	}
	fmt.Println()
}

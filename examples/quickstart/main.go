// Quickstart: define a class in the Smalltalk subset, load it on the
// Caltech Object Machine, send messages and read the statistics that make
// the paper's argument — abstract instructions resolved through the ITLB.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
class Counter extends Object [
	| n |
	method init [ n := 0 ]
	method bump [ n := n + 1. ^n ]
	method value [ ^n ]
]
extend SmallInt [
	method fact [
		self isZero ifTrue: [ ^1 ].
		^self * (self - 1) fact
	]
]
`

func main() {
	sys := obarch.NewSystem(obarch.Options{})
	if err := sys.Load(src); err != nil {
		log.Fatal(err)
	}

	// Late-bound arithmetic: the same + opcode is a hardware primitive
	// for integers and a method call for anything that defines it.
	v, err := sys.SendInt(10, "fact")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("10 fact =", v)

	// Objects: instantiate, send, observe.
	counter, err := sys.NewInstanceOf("Counter", 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Send(counter, "init"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sys.Send(counter, "bump"); err != nil {
			log.Fatal(err)
		}
	}
	val, _ := sys.Send(counter, "value")
	fmt.Println("counter value =", val)

	s := sys.Stats()
	fmt.Printf("instructions=%d cycles=%d CPI=%.2f sends=%d LIFO returns=%.0f%%\n",
		s.Instructions, s.Cycles, s.CPI(), s.Sends, 100*s.LIFOShare())
	fmt.Printf("ITLB hit ratio=%.2f%% (method lookup amortised away)\n", 100*sys.ITLBHitRatio())
}

// Serving: compile and load the workload suite once, snapshot the image,
// clone it into a sharded pool of worker machines, and replay the suite as
// concurrent traffic from eight clients — the paper's single processor
// scaled out the way Givelberg's object-system-as-fleet argument suggests.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"

	"repro"
	"repro/internal/workload"
)

func main() {
	sys := obarch.NewSystem(obarch.Options{})
	progs, err := workload.LoadSuite(sys.M)
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	pool, err := sys.ServePool(workers)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	fmt.Printf("pool: %d workers cloned from one %d-program image\n", pool.Workers(), len(progs))

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, p := range progs {
				res := pool.Do(obarch.Request{Receiver: obarch.Int(p.Size), Selector: p.Entry})
				got, err := res.Int()
				if err != nil {
					log.Fatalf("client %d: %s: %v", c, p.Name, err)
				}
				if got != p.Check {
					log.Fatalf("client %d: %s checksum %d, want %d", c, p.Name, got, p.Check)
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("all %d checksums validated across %d concurrent clients\n", clients*len(progs), clients)
	fmt.Println()
	fmt.Print(pool.Metrics().Report())
}

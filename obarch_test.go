package obarch

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem(Options{})
	if err := sys.Load(`extend SmallInt [ method double [ ^self + self ] ]`); err != nil {
		t.Fatal(err)
	}
	got, err := sys.SendInt(21, "double")
	if err != nil || got != 42 {
		t.Fatalf("double = %d, %v", got, err)
	}
	if sys.Stats().Instructions == 0 {
		t.Fatal("no instructions recorded")
	}
}

func TestValuesAndInstances(t *testing.T) {
	sys := NewSystem(Options{})
	arr, err := sys.NewInstanceOf("Array", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Send(arr, "at:put:", Int(0), Float(1.5)); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Send(arr, "at:", Int(0))
	if err != nil || got != Float(1.5) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := sys.NewInstanceOf("Nonesuch", 0); err == nil {
		t.Fatal("unknown class instantiated")
	}
	if !True.Truthy() || False.Truthy() || Nil.Truthy() {
		t.Fatal("truth constants wrong")
	}
}

func TestCollectThroughFacade(t *testing.T) {
	sys := NewSystem(Options{})
	for i := 0; i < 5; i++ {
		if _, err := sys.NewInstanceOf("Array", 4); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Collect()
	if st.SweptObjects != 5 {
		t.Fatalf("swept %d, want 5", st.SweptObjects)
	}
	keep, _ := sys.NewInstanceOf("Array", 4)
	sys.AddRoot(keep)
	if st := sys.Collect(); st.SweptObjects != 0 {
		t.Fatalf("swept rooted object")
	}
}

func TestFithFacadeAgrees(t *testing.T) {
	src := `extend SmallInt [ method triple [ ^self + self + self ] ]`
	sys := NewSystem(Options{})
	if err := sys.Load(src); err != nil {
		t.Fatal(err)
	}
	fs := NewFithSystem()
	if err := fs.Load(src); err != nil {
		t.Fatal(err)
	}
	a, err := sys.SendInt(14, "triple")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.SendInt(14, "triple")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a != 42 {
		t.Fatalf("COM %d vs Fith %d", a, b)
	}
}

func TestOptionsAblation(t *testing.T) {
	src := `extend SmallInt [ method double [ ^self + self ] ]`
	run := func(opt Options) uint64 {
		sys := NewSystem(opt)
		if err := sys.Load(src); err != nil {
			t.Fatal(err)
		}
		for i := int32(0); i < 30; i++ {
			if _, err := sys.SendInt(i, "double"); err != nil {
				t.Fatal(err)
			}
		}
		return sys.Stats().LookupCycles
	}
	if with, without := run(Options{}), run(Options{NoITLB: true}); without <= with {
		t.Fatalf("NoITLB lookup cycles %d not above ITLB %d", without, with)
	}
	sys := NewSystem(Options{ITLBEntries: 16, ITLBAssoc: 1, CtxBlocks: 8, MaxSteps: 1000})
	if err := sys.Load(src); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SendInt(3, "double"); err != nil {
		t.Fatal(err)
	}
	if sys.ITLBHitRatio() < 0 {
		t.Fatal("hit ratio unavailable")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 9 {
		t.Fatalf("only %d experiments", len(ids))
	}
	var buf bytes.Buffer
	if err := RunExperiment("t5", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MULTICS") {
		t.Fatalf("t5 report:\n%s", buf.String())
	}
	if err := RunExperiment("bogus", &buf); err == nil {
		t.Fatal("bogus experiment ran")
	}
}

func TestLoadErrorsSurface(t *testing.T) {
	sys := NewSystem(Options{})
	if err := sys.Load("class ["); err == nil {
		t.Fatal("bad source loaded")
	}
	if _, err := sys.SendInt(1, "missingMethod"); err == nil {
		t.Fatal("missing method answered")
	}
}

func TestServePoolThroughFacade(t *testing.T) {
	sys := NewSystem(Options{})
	if err := sys.Load(`extend SmallInt [ method double [ ^self + self ] ]`); err != nil {
		t.Fatal(err)
	}
	// The package-doc serving quickstart, verbatim.
	pool, err := sys.ServePool(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	res := pool.Do(Request{Receiver: Int(21), Selector: "double"})
	v, err := res.Int()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("pool 21 double = %d", v)
	}
	// The System itself stays usable alongside the pool: the snapshot
	// decoupled them.
	if got, err := sys.SendInt(10, "double"); err != nil || got != 20 {
		t.Fatalf("system after pool: %d, %v", got, err)
	}
	if met := pool.Metrics(); met.Requests != 1 || met.Errors != 0 {
		t.Fatalf("pool metrics: %+v", met)
	}
}
